package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTableIGolden verifies the paper's Table I: all references valid.
func TestTableIGolden(t *testing.T) {
	c := CubicCoeffs(0b1111)
	want := [4]float64{-1.0 / 16, 9.0 / 16, 9.0 / 16, -1.0 / 16}
	for i := range c {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Fatalf("p%d = %g want %g", i, c[i], want[i])
		}
	}
}

// TestTableIIGolden verifies the paper's Table II: exactly one reference
// invalid (validity rows 0111, 1011, 1101, 1110 as written v0..v3).
func TestTableIIGolden(t *testing.T) {
	cases := []struct {
		mask int // bit i ⇔ v_i
		want [4]float64
	}{
		{0b1110, [4]float64{0, 3.0 / 8, 3.0 / 4, -1.0 / 8}}, // v0=0
		{0b1101, [4]float64{1.0 / 8, 0, 9.0 / 8, -1.0 / 4}}, // v1=0
		{0b1011, [4]float64{-1.0 / 4, 9.0 / 8, 0, 1.0 / 8}}, // v2=0
		{0b0111, [4]float64{-1.0 / 8, 3.0 / 4, 3.0 / 8, 0}}, // v3=0
	}
	for _, c := range cases {
		got := CubicCoeffs(c.mask)
		for i := range got {
			if math.Abs(got[i]-c.want[i]) > 1e-12 {
				t.Fatalf("mask %04b: p%d = %g want %g", c.mask, i, got[i], c.want[i])
			}
		}
	}
}

// TestInvalidGetZeroCoefficient: masked references must never influence the
// prediction.
func TestInvalidGetZeroCoefficient(t *testing.T) {
	for mask := 0; mask < 16; mask++ {
		c := CubicCoeffs(mask)
		for i := 0; i < 4; i++ {
			if mask&(1<<i) == 0 && c[i] != 0 {
				t.Fatalf("mask %04b: invalid ref %d has coeff %g", mask, i, c[i])
			}
		}
	}
}

// TestCoefficientsSumToOne: with at least one valid reference the fit must
// reproduce constants (coefficients sum to 1); with none, prediction is 0.
func TestCoefficientsSumToOne(t *testing.T) {
	for mask := 0; mask < 16; mask++ {
		c := CubicCoeffs(mask)
		sum := c[0] + c[1] + c[2] + c[3]
		want := 1.0
		if mask == 0 {
			want = 0
		}
		if math.Abs(sum-want) > 1e-12 {
			t.Fatalf("mask %04b: coeff sum %g want %g", mask, sum, want)
		}
	}
	for mask := 0; mask < 4; mask++ {
		c := LinearCoeffs(mask)
		sum := c[0] + c[1]
		want := 1.0
		if mask == 0 {
			want = 0
		}
		if math.Abs(sum-want) > 1e-12 {
			t.Fatalf("linear mask %02b: sum %g", mask, sum)
		}
	}
}

// refPositions are the stride-unit coordinates of the four cubic references
// relative to the target (paper Fig. 6).
var refPositions = [4]float64{-3, -1, 1, 3}

// TestPolynomialReproduction: with k valid references the fit must be exact
// on polynomials of degree < min(k, valid count) sampled at the reference
// positions — linear reproduction for ≥2 refs and full cubic for 4.
func TestPolynomialReproduction(t *testing.T) {
	eval := func(coef []float64, x float64) float64 {
		v := 0.0
		for i := len(coef) - 1; i >= 0; i-- {
			v = v*x + coef[i]
		}
		return v
	}
	rng := rand.New(rand.NewSource(11))
	for mask := 1; mask < 16; mask++ {
		nvalid := 0
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				nvalid++
			}
		}
		// The fit degrades to degree nvalid-1 (4 valid → cubic is exact for
		// degree ≤ 3, 3 valid → quadratic, 2 → linear, 1 → constant).
		maxDeg := nvalid - 1
		if maxDeg > 3 {
			maxDeg = 3
		}
		for deg := 0; deg <= maxDeg; deg++ {
			coef := make([]float64, deg+1)
			for i := range coef {
				coef[i] = rng.NormFloat64()
			}
			var d [4]float64
			for i := 0; i < 4; i++ {
				if mask&(1<<i) != 0 {
					d[i] = eval(coef, refPositions[i])
				} else {
					d[i] = 1e30 // garbage must be ignored
				}
			}
			got := PredictCubic(d, mask)
			want := eval(coef, 0)
			scale := math.Max(1, math.Abs(want))
			if math.Abs(got-want) > 1e-9*scale {
				t.Fatalf("mask %04b deg %d: got %g want %g", mask, deg, got, want)
			}
		}
	}
}

// TestTwoValidIsLinearFit verifies the specific degradations the paper
// mentions: two valid points give a linear fit through them.
func TestTwoValidIsLinearFit(t *testing.T) {
	// v1, v2 valid (positions −1, +1): p = (d1+d2)/2.
	got := PredictCubic([4]float64{99, 4, 8, 99}, 0b0110)
	if math.Abs(got-6) > 1e-12 {
		t.Fatalf("interior linear: %g want 6", got)
	}
	// v2, v3 valid (positions +1, +3): extrapolation 1.5·d2 − 0.5·d3.
	got = PredictCubic([4]float64{99, 99, 10, 14}, 0b1100)
	if math.Abs(got-8) > 1e-12 {
		t.Fatalf("extrapolation: %g want 8", got)
	}
}

func TestLinearPredict(t *testing.T) {
	if got := PredictLinear(4, 8, 3); got != 6 {
		t.Fatalf("both valid: %g", got)
	}
	if got := PredictLinear(4, 999, 1); got != 4 {
		t.Fatalf("only d1: %g", got)
	}
	if got := PredictLinear(999, 8, 2); got != 8 {
		t.Fatalf("only d2: %g", got)
	}
	if got := PredictLinear(999, 999, 0); got != 0 {
		t.Fatalf("none valid: %g", got)
	}
}

func TestFittingString(t *testing.T) {
	if Linear.String() != "Linear" || Cubic.String() != "Cubic" {
		t.Fatal("Fitting.String broken")
	}
}

// TestFormulaTwoConsistency checks the closed form against a direct
// evaluation of Formula (2) for random validity masks.
func TestFormulaTwoConsistency(t *testing.T) {
	f := func(mask8 uint8) bool {
		mask := int(mask8) & 15
		c := CubicCoeffs(mask)
		for i := 0; i < 4; i++ {
			p := 1.0
			for j := 0; j < 4; j++ {
				vj := 0.0
				if mask&(1<<j) != 0 {
					vj = 1
				}
				p *= vj*cubicM[i][j] + (1-vj)*cubicB[i][j]
			}
			if math.Abs(p-c[i]) > 1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
