// Package qoz reimplements the QoZ 1.1 baseline (Liu et al., SC '22 —
// "dynamic quality metric oriented error bounded lossy compression"): the
// SZ3 interpolation framework plus auto-tuned level-wise error bounds.
// Coarse interpolation levels anchor all finer predictions, so QoZ spends
// extra precision there — eb_ℓ = eb / min(α^(ℓ−1), β) — and tunes α on a
// sample, which usually buys a better rate–distortion trade than flat SZ3.
package qoz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cliz/internal/codec"
	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/huffman"
	"cliz/internal/interp"
	"cliz/internal/lossless"
	"cliz/internal/predict"
	"cliz/internal/quant"
)

const magic = "QOZ1"

// Beta caps how much tighter the coarse levels get.
const Beta = 4.0

// Alphas is the per-level tightening factor search space.
var Alphas = []float64{1.0, 1.25, 1.5, 1.75, 2.0}

// ErrCorrupt reports a malformed QoZ blob.
var ErrCorrupt = errors.New("qoz: corrupt blob")

// Compressor implements codec.Compressor.
type Compressor struct{}

func init() { codec.Register(Compressor{}) }

// Name implements codec.Compressor.
func (Compressor) Name() string { return "QoZ" }

func levelFactor(alpha float64) func(int) float64 {
	return func(level int) float64 {
		return 1 / math.Min(math.Pow(alpha, float64(level-1)), Beta)
	}
}

func config(eb, alpha float64, fit predict.Fitting) interp.Config {
	return interp.Config{
		EB:            eb,
		Radius:        quant.DefaultRadius,
		Fitting:       fit,
		LevelEBFactor: levelFactor(alpha),
	}
}

// tune picks (alpha, fitting) minimizing the compressed size of a ~1%
// sample, mirroring QoZ's sampling-based auto-tuning.
func tune(data []float32, dims []int, eb float64) (float64, predict.Fitting) {
	blocks := grid.SampleBlocks(dims, 0.01, 4)
	sample, sdims := grid.ConcatBlocks(data, dims, blocks)
	bestAlpha, bestFit := 1.0, predict.Cubic
	bestLen := -1
	if len(sample) == 0 {
		return bestAlpha, bestFit
	}
	for _, alpha := range Alphas {
		for _, fit := range []predict.Fitting{predict.Linear, predict.Cubic} {
			blob, err := encodeUnit(sample, sdims, eb, alpha, fit)
			if err != nil {
				continue
			}
			if bestLen < 0 || len(blob) < bestLen {
				bestAlpha, bestFit, bestLen = alpha, fit, len(blob)
			}
		}
	}
	return bestAlpha, bestFit
}

func encodeUnit(data []float32, dims []int, eb, alpha float64, fit predict.Fitting) ([]byte, error) {
	res, err := interp.Compress(data, dims, config(eb, alpha, fit))
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(data)/2)
	out = append(out, magic...)
	out = append(out, 1) // version
	fb := byte(0)
	if fit == predict.Cubic {
		fb = 1
	}
	out = append(out, fb)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(alpha))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	out = append(out, b8[:]...)
	out = appendUvarint(out, uint64(len(dims)))
	for _, d := range dims {
		out = appendUvarint(out, uint64(d))
	}
	syms := make([]uint32, len(res.Bins))
	for i, b := range res.Bins {
		syms[i] = uint32(b)
	}
	be := lossless.Flate{Level: 6}
	sec := lossless.Encode(be, huffman.EncodeBlock(syms))
	out = appendUvarint(out, uint64(len(sec)))
	out = append(out, sec...)
	lits := lossless.Encode(be, float32sToBytes(res.Literals))
	out = appendUvarint(out, uint64(len(lits)))
	out = append(out, lits...)
	return out, nil
}

// Compress implements codec.Compressor (mask/periodicity metadata ignored —
// QoZ is a general-purpose compressor).
func (Compressor) Compress(ds *dataset.Dataset, eb float64) ([]byte, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if eb <= 0 {
		return nil, fmt.Errorf("qoz: error bound must be positive, got %g", eb)
	}
	alpha, fit := tune(ds.Data, ds.Dims, eb)
	return encodeUnit(ds.Data, ds.Dims, eb, alpha, fit)
}

// Decompress implements codec.Compressor.
func (Compressor) Decompress(blob []byte) ([]float32, []int, error) {
	pos := 0
	if len(blob) < 6 || string(blob[:4]) != magic {
		return nil, nil, ErrCorrupt
	}
	pos = 4
	if blob[pos] != 1 {
		return nil, nil, fmt.Errorf("qoz: unsupported version %d", blob[pos])
	}
	pos++
	fit := predict.Linear
	if blob[pos] == 1 {
		fit = predict.Cubic
	}
	pos++
	if len(blob)-pos < 16 {
		return nil, nil, ErrCorrupt
	}
	alpha := math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	pos += 8
	eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	pos += 8
	if eb <= 0 || math.IsNaN(eb) || alpha < 1 || math.IsNaN(alpha) {
		return nil, nil, ErrCorrupt
	}
	nd, err := readUvarint(blob, &pos)
	if err != nil || nd < 1 || nd > 8 {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, nd)
	vol := 1
	for i := range dims {
		d, err := readUvarint(blob, &pos)
		if err != nil || d == 0 || d > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		vol *= int(d)
		if vol > 1<<33 {
			return nil, nil, ErrCorrupt
		}
	}
	sec, err := readSection(blob, &pos)
	if err != nil {
		return nil, nil, err
	}
	raw, err := lossless.Decode(sec)
	if err != nil {
		return nil, nil, err
	}
	syms, _, err := huffman.DecodeBlock(raw)
	if err != nil {
		return nil, nil, err
	}
	if len(syms) != vol {
		return nil, nil, ErrCorrupt
	}
	litSec, err := readSection(blob, &pos)
	if err != nil {
		return nil, nil, err
	}
	litBytes, err := lossless.Decode(litSec)
	if err != nil {
		return nil, nil, err
	}
	lits, err := bytesToFloat32s(litBytes)
	if err != nil {
		return nil, nil, err
	}
	bins := make([]int32, vol)
	for i, s := range syms {
		bins[i] = int32(s)
	}
	data, err := interp.Decompress(bins, lits, dims, config(eb, alpha, fit))
	if err != nil {
		return nil, nil, err
	}
	return data, dims, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func readUvarint(src []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(src[*pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	*pos += n
	return v, nil
}

func readSection(src []byte, pos *int) ([]byte, error) {
	l, err := readUvarint(src, pos)
	if err != nil {
		return nil, err
	}
	if uint64(*pos)+l > uint64(len(src)) {
		return nil, ErrCorrupt
	}
	out := src[*pos : *pos+int(l)]
	*pos += int(l)
	return out, nil
}

func float32sToBytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToFloat32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, ErrCorrupt
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}
