package qoz

import (
	"math"
	"testing"

	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/stats"
)

func TestRoundTripErrorBound(t *testing.T) {
	var c Compressor
	ds := datagen.HurricaneT(0.06)
	for _, rel := range []float64{1e-1, 1e-2, 1e-4} {
		eb := ds.AbsErrorBound(rel)
		blob, err := c.Compress(ds, eb)
		if err != nil {
			t.Fatal(err)
		}
		got, dims, err := c.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dims {
			if dims[i] != ds.Dims[i] {
				t.Fatalf("dims %v", dims)
			}
		}
		if e := stats.MaxAbsErr(ds.Data, got, nil); e > eb*(1+1e-9) {
			t.Fatalf("rel %g: max error %g > %g", rel, e, eb)
		}
	}
}

func TestLevelFactorsPreserveBound(t *testing.T) {
	// All per-level factors must be ≤ 1 so the global bound holds.
	for _, alpha := range Alphas {
		f := levelFactor(alpha)
		for level := 1; level <= 12; level++ {
			if v := f(level); v > 1 || v <= 0 {
				t.Fatalf("alpha %g level %d: factor %g", alpha, level, v)
			}
		}
		if alpha > 1 && f(10) >= f(1) {
			t.Fatalf("alpha %g: coarse levels should be tighter", alpha)
		}
		// Beta caps the tightening.
		if got := f(100); got < 1/Beta-1e-12 {
			t.Fatalf("alpha %g: factor %g fell below 1/beta", alpha, got)
		}
	}
}

func TestQoZNoWorseThanFlatAlphaOnSmoothData(t *testing.T) {
	// The tuner includes alpha=1 (plain SZ3 behaviour), so QoZ's choice can
	// never be worse than flat on its own sample metric; verify the full
	// dataset ordering holds on a typical smooth field.
	ds := datagen.CESMT(0.05)
	eb := ds.AbsErrorBound(1e-3)
	tunedAlpha, tunedFit := tune(ds.Data, ds.Dims, eb)
	flat, err := encodeUnit(ds.Data, ds.Dims, eb, 1.0, tunedFit)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := encodeUnit(ds.Data, ds.Dims, eb, tunedAlpha, tunedFit)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(tuned)) > 1.1*float64(len(flat)) {
		t.Fatalf("tuned alpha %g much worse than flat: %d vs %d",
			tunedAlpha, len(tuned), len(flat))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	var c Compressor
	ds := datagen.HurricaneT(0.05)
	blob, err := c.Compress(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{nil, []byte("NOPE"), blob[:8], blob[:len(blob)/3]} {
		if _, _, err := c.Decompress(bad); err == nil {
			t.Fatalf("corrupt blob (%d bytes) accepted", len(bad))
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	var c Compressor
	ds := &dataset.Dataset{Name: "x", Data: make([]float32, 4), Dims: []int{2, 2}}
	if _, err := c.Compress(ds, 0); err == nil {
		t.Fatal("zero eb accepted")
	}
	if _, err := c.Compress(ds, math.Inf(1)); err == nil {
		// Inf eb: quantizer would accept everything into bin radius; the
		// compressor should either work or fail, but not panic.
		t.Log("Inf eb accepted (documented behaviour)")
	}
}

func TestTinyDataset(t *testing.T) {
	var c Compressor
	ds := &dataset.Dataset{Name: "tiny", Data: []float32{1, 2, 3, 4, 5}, Dims: []int{5}}
	blob, err := c.Compress(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.MaxAbsErr(ds.Data, got, nil); e > 0.1 {
		t.Fatalf("tiny: err %g", e)
	}
}
