// Package quality is a Z-checker-style assessment suite for lossy
// reconstructions (the paper's distortion evaluation relies on this family
// of metrics — PSNR, SSIM, Pearson correlation, Wasserstein distance — and
// cites Z-checker as the community framework). Given the original and
// reconstructed field it computes pointwise error statistics, correlation
// and distributional distances, plus an error-autocorrelation probe that
// flags compression artifacts invisible to PSNR.
package quality

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cliz/internal/stats"
)

// Report holds the full assessment.
type Report struct {
	Points int // valid points scored
	// NonFinite counts valid points excluded from every statistic because
	// the original or reconstructed value is NaN/±Inf — a pointwise error
	// has no meaning there, and one NaN would otherwise poison every
	// aggregate below. Fidelity at such points (NaN→NaN, ±Inf exact) is the
	// codec contract's job, not the metric suite's.
	NonFinite   int
	MinErr      float64 // most negative pointwise error (recon − orig)
	MaxErr      float64 // most positive pointwise error
	MaxAbsErr   float64
	MeanErr     float64 // bias
	RMSE        float64
	NRMSE       float64 // RMSE / value range
	PSNR        float64
	SSIM        float64
	Pearson     float64
	Wasserstein float64 // 1-Wasserstein distance between value distributions
	// ErrAutocorr is the lag-1 autocorrelation of the pointwise error along
	// the fastest dimension. Near 0 = white (ideal); large values reveal
	// structured artifacts even when PSNR looks fine.
	ErrAutocorr float64
	// Histogram counts pointwise errors in HistogramBins uniform bins over
	// [−MaxAbsErr, +MaxAbsErr].
	Histogram []int
}

// HistogramBins is the error-histogram resolution.
const HistogramBins = 21

// Assess computes the full report. valid may be nil; dims drive the SSIM
// plane split and the autocorrelation direction.
func Assess(orig, recon []float32, dims []int, valid []bool) Report {
	var r Report
	valid, r.NonFinite = finiteValidity(orig, recon, valid)
	r.MinErr = math.Inf(1)
	r.MaxErr = math.Inf(-1)
	var sumErr, sumSq float64
	for i := range orig {
		if valid != nil && !valid[i] {
			continue
		}
		e := float64(recon[i]) - float64(orig[i])
		if e < r.MinErr {
			r.MinErr = e
		}
		if e > r.MaxErr {
			r.MaxErr = e
		}
		sumErr += e
		sumSq += e * e
		r.Points++
	}
	if r.Points == 0 {
		r.MinErr, r.MaxErr = 0, 0
		return r
	}
	r.MeanErr = sumErr / float64(r.Points)
	r.RMSE = math.Sqrt(sumSq / float64(r.Points))
	r.MaxAbsErr = math.Max(math.Abs(r.MinErr), math.Abs(r.MaxErr))
	lo, hi := stats.Range(orig, valid)
	if span := hi - lo; span > 0 {
		r.NRMSE = r.RMSE / span
	}
	r.PSNR = stats.PSNR(orig, recon, valid)
	r.SSIM = stats.SSIM(orig, recon, dims, 8, valid)
	r.Pearson = stats.Pearson(orig, recon, valid)
	r.Wasserstein = wasserstein1(orig, recon, valid)
	r.ErrAutocorr = errAutocorrLag1(orig, recon, dims, valid)
	r.Histogram = errorHistogram(orig, recon, valid, r.MaxAbsErr)
	return r
}

// finiteValidity narrows valid to the points where both orig and recon are
// finite, returning the (possibly unchanged) mask plus the number of
// otherwise-valid points dropped. No allocation happens unless a non-finite
// value is actually present.
func finiteValidity(orig, recon []float32, valid []bool) ([]bool, int) {
	finite := func(v float32) bool {
		f := float64(v)
		return !math.IsNaN(f) && !math.IsInf(f, 0)
	}
	dropped := 0
	var eff []bool
	for i := range orig {
		if valid != nil && !valid[i] {
			continue
		}
		if finite(orig[i]) && finite(recon[i]) {
			continue
		}
		if eff == nil {
			if valid != nil {
				eff = append([]bool(nil), valid...)
			} else {
				eff = make([]bool, len(orig))
				for j := range eff {
					eff[j] = true
				}
			}
		}
		eff[i] = false
		dropped++
	}
	if eff == nil {
		return valid, 0
	}
	return eff, dropped
}

// wasserstein1 computes the 1-Wasserstein (earth mover's) distance between
// the empirical value distributions: the mean absolute difference of the
// sorted samples.
func wasserstein1(orig, recon []float32, valid []bool) float64 {
	var a, b []float64
	for i := range orig {
		if valid != nil && !valid[i] {
			continue
		}
		a = append(a, float64(orig[i]))
		b = append(b, float64(recon[i]))
	}
	if len(a) == 0 {
		return 0
	}
	sort.Float64s(a)
	sort.Float64s(b)
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

// errAutocorrLag1 computes the lag-1 autocorrelation of the pointwise error
// along the fastest (last) dimension, skipping row boundaries and masked
// pairs.
func errAutocorrLag1(orig, recon []float32, dims []int, valid []bool) float64 {
	rowLen := dims[len(dims)-1]
	var sx, sxx, sxy float64
	n := 0
	for i := 0; i+1 < len(orig); i++ {
		if (i+1)%rowLen == 0 {
			continue
		}
		if valid != nil && (!valid[i] || !valid[i+1]) {
			continue
		}
		e0 := float64(recon[i]) - float64(orig[i])
		e1 := float64(recon[i+1]) - float64(orig[i+1])
		sx += e0 + e1
		sxx += e0*e0 + e1*e1
		sxy += e0 * e1
		n++
	}
	if n == 0 {
		return 0
	}
	mean := sx / float64(2*n)
	varr := sxx/float64(2*n) - mean*mean
	if varr <= 0 {
		return 0
	}
	cov := sxy/float64(n) - mean*mean
	return cov / varr
}

func errorHistogram(orig, recon []float32, valid []bool, maxAbs float64) []int {
	h := make([]int, HistogramBins)
	if maxAbs == 0 {
		return h
	}
	for i := range orig {
		if valid != nil && !valid[i] {
			continue
		}
		e := float64(recon[i]) - float64(orig[i])
		bin := int((e + maxAbs) / (2 * maxAbs) * float64(HistogramBins))
		if bin < 0 {
			bin = 0
		}
		if bin >= HistogramBins {
			bin = HistogramBins - 1
		}
		h[bin]++
	}
	return h
}

// String renders the report as a short human-readable block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "points       %d\n", r.Points)
	if r.NonFinite > 0 {
		fmt.Fprintf(&b, "non-finite   %d (excluded)\n", r.NonFinite)
	}
	fmt.Fprintf(&b, "max |err|    %.6g  (bias %.3g)\n", r.MaxAbsErr, r.MeanErr)
	fmt.Fprintf(&b, "RMSE         %.6g  (NRMSE %.3g)\n", r.RMSE, r.NRMSE)
	fmt.Fprintf(&b, "PSNR         %.2f dB\n", r.PSNR)
	fmt.Fprintf(&b, "SSIM         %.5f\n", r.SSIM)
	fmt.Fprintf(&b, "Pearson      %.6f\n", r.Pearson)
	fmt.Fprintf(&b, "Wasserstein  %.6g\n", r.Wasserstein)
	fmt.Fprintf(&b, "err lag-1 ac %.3f\n", r.ErrAutocorr)
	if len(r.Histogram) > 0 {
		maxC := 1
		for _, c := range r.Histogram {
			if c > maxC {
				maxC = c
			}
		}
		b.WriteString("err hist     ")
		glyphs := []rune(" .:-=+*#%@")
		for _, c := range r.Histogram {
			g := int(float64(c) / float64(maxC) * float64(len(glyphs)-1))
			b.WriteRune(glyphs[g])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
