package quality

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func field(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(float64(i)/20) + 0.1*rng.NormFloat64())
	}
	return out
}

func TestPerfectReconstruction(t *testing.T) {
	a := field(64*64, 1)
	r := Assess(a, a, []int{64, 64}, nil)
	if r.MaxAbsErr != 0 || r.RMSE != 0 || r.MeanErr != 0 {
		t.Fatalf("errors nonzero: %+v", r)
	}
	if !math.IsInf(r.PSNR, 1) {
		t.Fatalf("PSNR %v", r.PSNR)
	}
	if math.Abs(r.SSIM-1) > 1e-9 || math.Abs(r.Pearson-1) > 1e-9 {
		t.Fatalf("similarity: %+v", r)
	}
	if r.Wasserstein != 0 {
		t.Fatalf("wasserstein %v", r.Wasserstein)
	}
}

func TestWhiteNoiseError(t *testing.T) {
	a := field(128*128, 2)
	rng := rand.New(rand.NewSource(3))
	b := make([]float32, len(a))
	for i := range b {
		b[i] = a[i] + float32(0.01*rng.NormFloat64())
	}
	r := Assess(a, b, []int{128, 128}, nil)
	if r.RMSE < 0.008 || r.RMSE > 0.012 {
		t.Fatalf("RMSE %v", r.RMSE)
	}
	// White noise: near-zero lag-1 autocorrelation and near-zero bias.
	if math.Abs(r.ErrAutocorr) > 0.05 {
		t.Fatalf("autocorr %v", r.ErrAutocorr)
	}
	if math.Abs(r.MeanErr) > 0.001 {
		t.Fatalf("bias %v", r.MeanErr)
	}
}

func TestStructuredArtifactDetected(t *testing.T) {
	// A smooth low-frequency error (blocking-like artifact) must light up
	// the autocorrelation probe even at the same RMSE as white noise.
	a := field(128*128, 4)
	b := make([]float32, len(a))
	for i := range b {
		b[i] = a[i] + float32(0.01*math.Sin(float64(i%128)/6))
	}
	r := Assess(a, b, []int{128, 128}, nil)
	if r.ErrAutocorr < 0.8 {
		t.Fatalf("structured error not detected: autocorr %v", r.ErrAutocorr)
	}
}

func TestBiasShowsInMeanAndWasserstein(t *testing.T) {
	a := field(4096, 5)
	b := make([]float32, len(a))
	for i := range b {
		b[i] = a[i] + 0.05
	}
	r := Assess(a, b, []int{4096}, nil)
	if math.Abs(r.MeanErr-0.05) > 1e-6 {
		t.Fatalf("bias %v", r.MeanErr)
	}
	if math.Abs(r.Wasserstein-0.05) > 1e-3 {
		t.Fatalf("wasserstein %v (a constant shift moves mass exactly by it)", r.Wasserstein)
	}
}

func TestMaskedAssessment(t *testing.T) {
	a := field(1000, 6)
	b := make([]float32, len(a))
	copy(b, a)
	valid := make([]bool, len(a))
	for i := range valid {
		valid[i] = i%3 != 0
		if !valid[i] {
			b[i] = 1e30 // garbage at masked points must not count
		}
	}
	r := Assess(a, b, []int{1000}, valid)
	if r.MaxAbsErr != 0 {
		t.Fatalf("masked garbage leaked: %v", r.MaxAbsErr)
	}
	if r.Points != 666 {
		t.Fatalf("points %d", r.Points)
	}
}

func TestHistogramShape(t *testing.T) {
	a := make([]float32, 10000)
	b := make([]float32, 10000)
	rng := rand.New(rand.NewSource(7))
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	r := Assess(a, b, []int{10000}, nil)
	if len(r.Histogram) != HistogramBins {
		t.Fatalf("bins %d", len(r.Histogram))
	}
	total := 0
	for _, c := range r.Histogram {
		total += c
	}
	if total != 10000 {
		t.Fatalf("histogram total %d", total)
	}
	// Gaussian errors peak at the central bin.
	mid := r.Histogram[HistogramBins/2]
	if mid < r.Histogram[0]*3 {
		t.Fatalf("histogram not peaked: %v", r.Histogram)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	r := Assess(nil, nil, []int{1}, nil)
	if r.Points != 0 {
		t.Fatalf("points %d", r.Points)
	}
	all := Assess([]float32{1, 2}, []float32{1, 2}, []int{2}, []bool{false, false})
	if all.Points != 0 {
		t.Fatal("fully masked should score nothing")
	}
}

// TestEdgeCases is the table-driven edge-case suite the conformance work
// called for: constant fields, fully-masked fields and NaN/Inf-bearing
// fields must produce well-defined reports — in particular no NaN may leak
// into any aggregate, whatever the input.
func TestEdgeCases(t *testing.T) {
	nan := float32(math.NaN())
	pinf := float32(math.Inf(1))
	cases := []struct {
		name        string
		orig, recon []float32
		valid       []bool
		check       func(t *testing.T, r Report)
	}{
		{
			name:  "constant-perfect",
			orig:  []float32{3, 3, 3, 3},
			recon: []float32{3, 3, 3, 3},
			check: func(t *testing.T, r Report) {
				// Zero value range: NRMSE stays 0 by definition and a
				// perfect reconstruction reports infinite PSNR.
				if r.NRMSE != 0 || !math.IsInf(r.PSNR, 1) {
					t.Fatalf("NRMSE %v PSNR %v", r.NRMSE, r.PSNR)
				}
				if r.RMSE != 0 || r.Points != 4 {
					t.Fatalf("%+v", r)
				}
			},
		},
		{
			name:  "constant-lossy",
			orig:  []float32{3, 3, 3, 3},
			recon: []float32{3.01, 2.99, 3.01, 2.99},
			check: func(t *testing.T, r Report) {
				// Lossy recon of a zero-range field: RMSE is real, NRMSE
				// stays 0 (no range to normalize by), PSNR goes to −Inf
				// rather than NaN.
				if math.Abs(r.RMSE-0.01) > 1e-6 || r.NRMSE != 0 {
					t.Fatalf("RMSE %v NRMSE %v", r.RMSE, r.NRMSE)
				}
				if !math.IsInf(r.PSNR, -1) {
					t.Fatalf("PSNR %v, want -Inf", r.PSNR)
				}
			},
		},
		{
			name:  "all-masked",
			orig:  []float32{1, 2, 3},
			recon: []float32{9, 9, 9},
			valid: []bool{false, false, false},
			check: func(t *testing.T, r Report) {
				if r.Points != 0 || r.MaxAbsErr != 0 || r.RMSE != 0 {
					t.Fatalf("%+v", r)
				}
			},
		},
		{
			name:  "nan-pair-excluded",
			orig:  []float32{1, nan, 3, 4},
			recon: []float32{1, nan, 3, 4.5},
			check: func(t *testing.T, r Report) {
				if r.NonFinite != 1 || r.Points != 3 {
					t.Fatalf("NonFinite %d Points %d", r.NonFinite, r.Points)
				}
				if math.Abs(r.MaxAbsErr-0.5) > 1e-9 {
					t.Fatalf("MaxAbsErr %v", r.MaxAbsErr)
				}
			},
		},
		{
			name:  "inf-excluded",
			orig:  []float32{1, pinf, 3, 4},
			recon: []float32{1, pinf, 3, 4},
			check: func(t *testing.T, r Report) {
				if r.NonFinite != 1 || r.Points != 3 {
					t.Fatalf("NonFinite %d Points %d", r.NonFinite, r.Points)
				}
				if r.MaxAbsErr != 0 || !math.IsInf(r.PSNR, 1) {
					t.Fatalf("%+v", r)
				}
			},
		},
		{
			name:  "recon-nan-on-finite-orig",
			orig:  []float32{1, 2, 3, 4},
			recon: []float32{1, nan, 3, 4},
			check: func(t *testing.T, r Report) {
				// A decoder that manufactures NaN is excluded from the
				// aggregates but visibly counted — never silently folded in.
				if r.NonFinite != 1 || r.Points != 3 {
					t.Fatalf("NonFinite %d Points %d", r.NonFinite, r.Points)
				}
			},
		},
		{
			name:  "masked-nan-not-counted",
			orig:  []float32{1, nan, 3},
			recon: []float32{1, 7, 3},
			valid: []bool{true, false, true},
			check: func(t *testing.T, r Report) {
				// NaN at an already-masked point is invisible, not NonFinite.
				if r.NonFinite != 0 || r.Points != 2 {
					t.Fatalf("NonFinite %d Points %d", r.NonFinite, r.Points)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Assess(tc.orig, tc.recon, []int{len(tc.orig)}, tc.valid)
			for name, v := range map[string]float64{
				"MinErr": r.MinErr, "MaxErr": r.MaxErr, "MaxAbsErr": r.MaxAbsErr,
				"MeanErr": r.MeanErr, "RMSE": r.RMSE, "NRMSE": r.NRMSE,
				"SSIM": r.SSIM, "Pearson": r.Pearson,
				"Wasserstein": r.Wasserstein, "ErrAutocorr": r.ErrAutocorr,
			} {
				if math.IsNaN(v) {
					t.Fatalf("%s is NaN: %+v", name, r)
				}
			}
			if math.IsNaN(r.PSNR) {
				t.Fatalf("PSNR is NaN: %+v", r)
			}
			tc.check(t, r)
			_ = r.String() // must not panic on any edge shape
		})
	}
}

func TestStringRendering(t *testing.T) {
	a := field(1024, 8)
	b := make([]float32, len(a))
	for i := range b {
		b[i] = a[i] + 0.001
	}
	s := Assess(a, b, []int{32, 32}, nil).String()
	for _, want := range []string{"PSNR", "SSIM", "Wasserstein", "err hist"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}
