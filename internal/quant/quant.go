// Package quant implements the error-bounded linear-scale quantizer shared
// by the prediction-based codecs (SZ3, QoZ, CliZ). Bin 0 is reserved for
// "unpredictable" points whose exact value is stored as a literal; all other
// bins encode round((orig-pred)/(2·eb)) offset by Radius so they are
// non-negative (paper §IV, following the SZ3 framework).
package quant

import "math"

// DefaultRadius matches SZ3's default quantization radius: predictable bins
// live in [1, 2·Radius).
const DefaultRadius = 32768

// Quantizer is an error-bounded linear quantizer. The zero value is not
// usable; construct with New (float32 elements) or New64 (float64 elements).
type Quantizer struct {
	eb     float64
	radius int32
	// wide marks float64 element semantics: reconstructions are verified
	// (and recovered) at full float64 precision instead of being squeezed
	// through float32.
	wide bool
}

// New returns a quantizer for absolute error bound eb (> 0) over float32
// elements: the bound is verified on the float32-rounded reconstruction the
// decoder will materialize.
func New(eb float64, radius int32) Quantizer {
	if radius < 2 {
		radius = 2
	}
	return Quantizer{eb: eb, radius: radius}
}

// New64 returns a quantizer for float64 elements. Verifying through a
// float32 cast would spuriously demote in-bound points to literals whenever
// the value's float32 ulp exceeds eb (e.g. values near 1e8 under eb=1e-3),
// so the wide quantizer keeps the reconstruction at float64 end to end.
func New64(eb float64, radius int32) Quantizer {
	q := New(eb, radius)
	q.wide = true
	return q
}

// EB returns the absolute error bound.
func (q Quantizer) EB() float64 { return q.eb }

// Radius returns the quantization radius.
func (q Quantizer) Radius() int32 { return q.radius }

// Quantize maps (pred, orig) to a bin and the reconstructed value.
// exact=true means the point is unpredictable (bin 0) and orig must be
// stored as a literal; the reconstruction is then orig itself (cast through
// float32, which is lossless for float32 inputs).
func (q Quantizer) Quantize(pred, orig float64) (bin int32, recon float64, exact bool) {
	diff := orig - pred
	qf := diff / (2 * q.eb)
	if qf > float64(q.radius-1) || qf < -float64(q.radius-1) || math.IsNaN(qf) {
		return 0, orig, true
	}
	k := int32(math.Round(qf))
	recon = pred + 2*q.eb*float64(k)
	// Verify: float rounding could push the reconstruction out of bounds.
	// The cast matches the element type — narrow quantizers check the
	// float32 value the decoder materializes, wide ones the full float64.
	if !q.wide {
		recon = float64(float32(recon))
	}
	if math.Abs(recon-orig) > q.eb {
		return 0, orig, true
	}
	return k + q.radius, recon, false
}

// Recover reconstructs a value from its bin, mirroring the element-type cast
// Quantize verified against. For bin 0 the caller must supply the stored
// literal.
func (q Quantizer) Recover(pred float64, bin int32, literal float64) float64 {
	if bin == 0 {
		return literal
	}
	r := pred + 2*q.eb*float64(bin-q.radius)
	if !q.wide {
		r = float64(float32(r))
	}
	return r
}
