package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRecoverSymmetry(t *testing.T) {
	q := New(0.01, DefaultRadius)
	cases := []struct{ pred, orig float64 }{
		{0, 0}, {1, 1.005}, {1, 0.995}, {100, 100.02}, {-5, -5.019},
		{3.25, 3.25}, {0, 0.0099},
	}
	for _, c := range cases {
		bin, recon, exact := q.Quantize(c.pred, c.orig)
		if exact {
			t.Fatalf("(%g,%g) unexpectedly unpredictable", c.pred, c.orig)
		}
		got := q.Recover(c.pred, bin, 0)
		if got != recon {
			t.Fatalf("Recover mismatch: %g vs %g", got, recon)
		}
		if math.Abs(got-c.orig) > 0.01+1e-12 {
			t.Fatalf("error bound violated: |%g-%g| = %g", got, c.orig, math.Abs(got-c.orig))
		}
	}
}

func TestUnpredictablePath(t *testing.T) {
	q := New(1e-6, 4) // tiny radius forces literals quickly
	bin, recon, exact := q.Quantize(0, 100)
	if !exact || bin != 0 {
		t.Fatalf("expected unpredictable, got bin %d", bin)
	}
	if recon != 100 {
		t.Fatalf("recon = %g", recon)
	}
	if got := q.Recover(0, 0, 100); got != 100 {
		t.Fatalf("Recover literal = %g", got)
	}
}

func TestNaNIsUnpredictable(t *testing.T) {
	q := New(0.1, DefaultRadius)
	_, _, exact := q.Quantize(0, math.NaN())
	if !exact {
		t.Fatal("NaN should be unpredictable")
	}
	_, _, exact = q.Quantize(math.NaN(), 5)
	if !exact {
		t.Fatal("NaN prediction should be unpredictable")
	}
}

func TestHugeFillValueIsUnpredictable(t *testing.T) {
	q := New(0.001, DefaultRadius)
	_, _, exact := q.Quantize(0, 1e35)
	if !exact {
		t.Fatal("CESM fill value should fall back to literal")
	}
}

func TestBinRange(t *testing.T) {
	q := New(0.5, 8)
	for d := -20.0; d <= 20; d += 0.25 {
		bin, _, exact := q.Quantize(0, d)
		if exact {
			continue
		}
		if bin < 1 || bin >= 16 {
			t.Fatalf("bin %d out of [1,16) for diff %g", bin, d)
		}
	}
}

func TestMinRadiusClamp(t *testing.T) {
	q := New(1, 0)
	if q.Radius() != 2 {
		t.Fatalf("radius not clamped: %d", q.Radius())
	}
}

func TestErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eb := math.Pow(10, -1-rng.Float64()*4) // 1e-1 .. 1e-5
		q := New(eb, DefaultRadius)
		for i := 0; i < 200; i++ {
			orig := float64(float32(rng.NormFloat64() * 100))
			pred := orig + rng.NormFloat64()*eb*50
			bin, recon, exact := q.Quantize(pred, orig)
			var got float64
			if exact {
				got = float64(float32(q.Recover(pred, bin, orig)))
			} else {
				got = float64(float32(q.Recover(pred, bin, 0)))
				if got != float64(float32(recon)) {
					return false
				}
			}
			if math.Abs(got-orig) > eb*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestWideQuantizerLargeMagnitudes pins the New64 contract: under eb=1e-3,
// values near 1e8 have a float32 ulp (~8) that dwarfs the bound, so the
// narrow quantizer's float32 verification must demote every point to a
// literal, while the wide quantizer keeps quantizing and still satisfies
// the bound at full float64 precision.
func TestWideQuantizerLargeMagnitudes(t *testing.T) {
	const eb = 1e-3
	narrow := New(eb, DefaultRadius)
	wide := New64(eb, DefaultRadius)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		pred := 1e8 + rng.Float64()
		orig := pred + (rng.Float64()-0.5)*0.1 // well within the radius
		if _, _, exact := narrow.Quantize(pred, orig); !exact {
			t.Fatalf("narrow quantizer kept a bin at %g despite a float32 ulp > eb", orig)
		}
		bin, recon, exact := wide.Quantize(pred, orig)
		if exact {
			t.Fatalf("wide quantizer demoted (%g,%g) to a literal", pred, orig)
		}
		if got := wide.Recover(pred, bin, 0); got != recon {
			t.Fatalf("wide Recover mismatch: %g vs %g", got, recon)
		}
		if math.Abs(recon-orig) > eb {
			t.Fatalf("wide bound violated: |%g-%g| = %g", recon, orig, math.Abs(recon-orig))
		}
	}
}

// TestWideQuantizerRoundTripProperty is a float64 round-trip property test:
// for any finite pred/orig pair the wide quantizer either stores a literal
// or recovers within the bound, and Quantize/Recover agree exactly.
func TestWideQuantizerRoundTripProperty(t *testing.T) {
	const eb = 1e-6
	q := New64(eb, DefaultRadius)
	f := func(pred, orig float64) bool {
		if math.IsNaN(pred) || math.IsInf(pred, 0) || math.IsNaN(orig) || math.IsInf(orig, 0) {
			return true
		}
		bin, recon, exact := q.Quantize(pred, orig)
		if exact {
			return bin == 0 && recon == orig
		}
		got := q.Recover(pred, bin, 0)
		return got == recon && math.Abs(got-orig) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowRecoverMatchesFloat32Materialization pins the satellite bugfix:
// Recover must mirror the float32 cast Quantize verified against, so the
// value the decoder hands out is exactly the one the bound was checked on.
func TestNarrowRecoverMatchesFloat32Materialization(t *testing.T) {
	q := New(0.01, DefaultRadius)
	pred, orig := 1000.0001, 1000.018
	bin, recon, exact := q.Quantize(pred, orig)
	if exact {
		t.Fatal("unexpectedly unpredictable")
	}
	if recon != float64(float32(recon)) {
		t.Fatalf("narrow recon %v is not a float32 value", recon)
	}
	if got := q.Recover(pred, bin, 0); got != recon {
		t.Fatalf("Recover %v differs from verified recon %v", got, recon)
	}
}
