package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRecoverSymmetry(t *testing.T) {
	q := New(0.01, DefaultRadius)
	cases := []struct{ pred, orig float64 }{
		{0, 0}, {1, 1.005}, {1, 0.995}, {100, 100.02}, {-5, -5.019},
		{3.25, 3.25}, {0, 0.0099},
	}
	for _, c := range cases {
		bin, recon, exact := q.Quantize(c.pred, c.orig)
		if exact {
			t.Fatalf("(%g,%g) unexpectedly unpredictable", c.pred, c.orig)
		}
		got := q.Recover(c.pred, bin, 0)
		if got != recon {
			t.Fatalf("Recover mismatch: %g vs %g", got, recon)
		}
		if math.Abs(got-c.orig) > 0.01+1e-12 {
			t.Fatalf("error bound violated: |%g-%g| = %g", got, c.orig, math.Abs(got-c.orig))
		}
	}
}

func TestUnpredictablePath(t *testing.T) {
	q := New(1e-6, 4) // tiny radius forces literals quickly
	bin, recon, exact := q.Quantize(0, 100)
	if !exact || bin != 0 {
		t.Fatalf("expected unpredictable, got bin %d", bin)
	}
	if recon != 100 {
		t.Fatalf("recon = %g", recon)
	}
	if got := q.Recover(0, 0, 100); got != 100 {
		t.Fatalf("Recover literal = %g", got)
	}
}

func TestNaNIsUnpredictable(t *testing.T) {
	q := New(0.1, DefaultRadius)
	_, _, exact := q.Quantize(0, math.NaN())
	if !exact {
		t.Fatal("NaN should be unpredictable")
	}
	_, _, exact = q.Quantize(math.NaN(), 5)
	if !exact {
		t.Fatal("NaN prediction should be unpredictable")
	}
}

func TestHugeFillValueIsUnpredictable(t *testing.T) {
	q := New(0.001, DefaultRadius)
	_, _, exact := q.Quantize(0, 1e35)
	if !exact {
		t.Fatal("CESM fill value should fall back to literal")
	}
}

func TestBinRange(t *testing.T) {
	q := New(0.5, 8)
	for d := -20.0; d <= 20; d += 0.25 {
		bin, _, exact := q.Quantize(0, d)
		if exact {
			continue
		}
		if bin < 1 || bin >= 16 {
			t.Fatalf("bin %d out of [1,16) for diff %g", bin, d)
		}
	}
}

func TestMinRadiusClamp(t *testing.T) {
	q := New(1, 0)
	if q.Radius() != 2 {
		t.Fatalf("radius not clamped: %d", q.Radius())
	}
}

func TestErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eb := math.Pow(10, -1-rng.Float64()*4) // 1e-1 .. 1e-5
		q := New(eb, DefaultRadius)
		for i := 0; i < 200; i++ {
			orig := float64(float32(rng.NormFloat64() * 100))
			pred := orig + rng.NormFloat64()*eb*50
			bin, recon, exact := q.Quantize(pred, orig)
			var got float64
			if exact {
				got = float64(float32(q.Recover(pred, bin, orig)))
			} else {
				got = float64(float32(q.Recover(pred, bin, 0)))
				if got != float64(float32(recon)) {
					return false
				}
			}
			if math.Abs(got-orig) > eb*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
