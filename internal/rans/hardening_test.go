package rans

import (
	"errors"
	"testing"
)

// TestDecodeBlockMaxBudget pins the caller-supplied symbol budget: a
// block declaring more symbols than the caller can possibly want is
// rejected as corrupt before any output allocation.
func TestDecodeBlockMaxBudget(t *testing.T) {
	syms := []uint32{1, 2, 3, 1, 2, 3, 1, 2}
	blob, ok := EncodeBlock(syms)
	if !ok {
		t.Fatal("EncodeBlock refused a trivially encodable block")
	}
	if _, _, err := DecodeBlockMax(blob, len(syms)); err != nil {
		t.Fatalf("exact budget rejected: %v", err)
	}
	_, _, err := DecodeBlockMax(blob, len(syms)-1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-budget block: want ErrCorrupt, got %v", err)
	}
	if _, _, err := DecodeBlockMax(blob, -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative budget: want ErrCorrupt, got %v", err)
	}
}

// TestDecodeBlockHugeDeclaredCount splices an absurd symbol count into
// an otherwise valid block. Because a single-symbol rANS stream really
// can emit unbounded symbols from four payload bytes, the count cannot
// be payload-bounded — the absolute MaxBlockSyms cap must reject it
// before make() runs, returning an errors.Is-classifiable error instead
// of attempting a multi-terabyte allocation.
func TestDecodeBlockHugeDeclaredCount(t *testing.T) {
	blob, ok := EncodeBlock([]uint32{7, 7, 7, 7})
	if !ok {
		t.Fatal("EncodeBlock failed")
	}
	pos := 0
	if _, err := parseTable(blob, &pos); err != nil {
		t.Fatalf("parseTable on own output: %v", err)
	}
	tail := pos
	if _, err := readUvarint(blob, &tail); err != nil {
		t.Fatalf("skip count varint: %v", err)
	}
	hostile := append([]byte(nil), blob[:pos]...)
	hostile = appendUvarint(hostile, 1<<40)
	hostile = append(hostile, blob[tail:]...)
	_, _, err := DecodeBlock(hostile)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge declared count: want ErrCorrupt, got %v", err)
	}
}
