package rans

import "encoding/binary"

// N-way interleaved rANS: W independent coder states, symbol i coded by
// state i mod W, so the decoder's per-symbol dependency chain spreads
// across W states and the renormalization reads pipeline instead of
// serializing on a single state. Unlike the classic rans_static shared
// stream, each way's renormalization bytes are kept in their own
// contiguous sub-stream (framed by per-way lengths): byte-interleaving
// the ways would multiplex W unrelated byte sequences and destroy the
// periodic patterns a downstream lossless pass exploits on highly
// redundant symbol streams, costing up to 4x on near-constant blocks.
// Separate sub-streams keep each way's bytes as LZ-friendly as a
// single-state stream and let the decoder advance W independent cursors
// with no cross-way dependency at all.

// DefaultWays is the interleave width used by EncodeInterleavedBlock
// callers that have no reason to pick another: wide enough to cover the
// decode loop's dependency latency, narrow enough that the per-way state
// and length framing stays negligible for small blocks.
const DefaultWays = 4

// maxWays bounds the declared interleave width of a block; wider brings no
// ILP benefit and a hostile width byte must not drive allocations.
const maxWays = 32

// EncodeInterleavedBlock compresses symbols into a self-contained block:
//
//	table | varint count | ways byte | per-way varint stream length |
//	per-way little-endian final state | concatenated per-way streams
//
// Each way's stream is byte-reversed so decoding is a forward scan. It
// returns ok=false when the alphabet exceeds MaxAlphabet (callers fall
// back to Huffman). ways is clamped to [1, maxWays].
func EncodeInterleavedBlock(symbols []uint32, ways int) ([]byte, bool) {
	if ways < 1 {
		ways = 1
	}
	if ways > maxWays {
		ways = maxWays
	}
	if len(symbols) == 0 {
		out := appendUvarint(nil, 0) // empty table sentinel handled on decode
		out = appendUvarint(out, 0)
		return out, true
	}
	counts := make(map[uint32]uint64)
	for _, s := range symbols {
		counts[s]++
	}
	t, ok := buildTable(counts)
	if !ok {
		return nil, false
	}
	out := t.serialize(nil)
	out = appendUvarint(out, uint64(len(symbols)))
	out = append(out, byte(ways))
	// Encode in reverse symbol order so the decoder runs forward; state
	// i%ways codes symbol i on both sides.
	states := make([]uint32, ways)
	for w := range states {
		states[w] = ransL
	}
	streams := make([][]byte, ways)
	w := (len(symbols) - 1) % ways
	for i := len(symbols) - 1; i >= 0; i-- {
		x := states[w]
		idx := t.index[symbols[i]]
		f := t.freq[idx]
		xmax := ((ransL >> scaleBits) << 8) * f
		for x >= xmax {
			streams[w] = append(streams[w], byte(x))
			x >>= 8
		}
		states[w] = ((x/f)<<scaleBits + x%f) + t.cum[idx]
		if w == 0 {
			w = ways
		}
		w--
	}
	for _, s := range streams {
		// Reverse so decoding is a forward scan, mirroring EncodeBlock.
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
	}
	for _, s := range streams {
		out = appendUvarint(out, uint64(len(s)))
	}
	var st [4]byte
	for w := 0; w < ways; w++ {
		binary.LittleEndian.PutUint32(st[:], states[w])
		out = append(out, st[:]...)
	}
	for _, s := range streams {
		out = append(out, s...)
	}
	return out, true
}

// DecodeInterleavedBlock reverses EncodeInterleavedBlock with the default
// symbol-count cap (see DecodeBlock).
func DecodeInterleavedBlock(src []byte) ([]uint32, int, error) {
	return DecodeInterleavedBlockMax(src, MaxBlockSyms)
}

// DecodeInterleavedBlockMax is DecodeInterleavedBlock with a caller-supplied
// upper bound on the declared symbol count (see DecodeBlockMax). Every final
// state must land back on the renormalization floor and every per-way
// stream must be fully consumed, or the block is rejected as corrupt.
func DecodeInterleavedBlockMax(src []byte, maxSyms int) ([]uint32, int, error) {
	pos := 0
	nSyms, err := readUvarint(src, &pos)
	if err != nil {
		return nil, 0, ErrCorrupt
	}
	if nSyms == 0 {
		// Empty block: just the count sentinel.
		cnt, err := readUvarint(src, &pos)
		if err != nil || cnt != 0 {
			return nil, 0, ErrCorrupt
		}
		return nil, pos, nil
	}
	// Rewind: the first varint was the table size.
	pos = 0
	t, err := parseTable(src, &pos)
	if err != nil {
		return nil, 0, err
	}
	count, err := readUvarint(src, &pos)
	if err != nil {
		return nil, 0, ErrCorrupt
	}
	if pos >= len(src) {
		return nil, 0, ErrCorrupt
	}
	ways := int(src[pos])
	pos++
	if ways < 1 || ways > maxWays {
		return nil, 0, ErrCorrupt
	}
	// Per-way stream lengths; each length is bounded by the remaining
	// payload before any slicing, so a hostile directory cannot reach past
	// the block or drive an allocation.
	var slens [maxWays]uint64
	var total uint64
	for w := 0; w < ways; w++ {
		l, err := readUvarint(src, &pos)
		if err != nil || l > uint64(len(src)) {
			return nil, 0, ErrCorrupt
		}
		slens[w] = l
		total += l
	}
	if total+uint64(4*ways) > uint64(len(src)-pos) {
		return nil, 0, ErrCorrupt
	}
	if maxSyms < 0 || count > uint64(maxSyms) {
		return nil, 0, ErrCorrupt
	}
	states := make([]uint32, ways)
	for w := 0; w < ways; w++ {
		states[w] = binary.LittleEndian.Uint32(src[pos+4*w:])
	}
	pos += 4 * ways
	streams := make([][]byte, ways)
	cursors := make([]int, ways)
	for w := 0; w < ways; w++ {
		streams[w] = src[pos : pos+int(slens[w])]
		pos += int(slens[w])
	}
	out := make([]uint32, count)
	// Hot loop: table slices hoisted, way index carried as a wrapping
	// counter instead of i%ways; each way renormalizes from its own
	// sub-stream through its own cursor.
	slotTab, freqTab, cumTab, symTab := t.slot, t.freq, t.cum, t.syms
	w := 0
	for i := range out {
		x := states[w]
		slot := x & (scaleTotal - 1)
		idx := int(slotTab[slot])
		f := freqTab[idx]
		x = f*(x>>scaleBits) + slot - cumTab[idx]
		if x < ransL {
			s, sp := streams[w], cursors[w]
			for x < ransL {
				if sp >= len(s) {
					return nil, 0, ErrCorrupt
				}
				x = x<<8 | uint32(s[sp])
				sp++
			}
			cursors[w] = sp
		}
		states[w] = x
		out[i] = symTab[idx]
		w++
		if w == ways {
			w = 0
		}
	}
	for w, x := range states {
		if x != ransL || cursors[w] != len(streams[w]) {
			return nil, 0, ErrCorrupt
		}
	}
	return out, pos, nil
}
