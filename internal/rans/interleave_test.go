package rans

import (
	"bytes"
	"compress/flate"
	"errors"
	"math/rand"
	"testing"
)

func randomSymbols(rng *rand.Rand, n, alphabet int) []uint32 {
	syms := make([]uint32, n)
	for i := range syms {
		// Zipf-ish skew so renormalization actually fires at mixed rates.
		if rng.Intn(4) == 0 {
			syms[i] = uint32(rng.Intn(alphabet))
		} else {
			syms[i] = uint32(rng.Intn(1 + alphabet/8))
		}
	}
	return syms
}

func TestInterleavedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, ways := range []int{1, 2, 3, 4, 5, 8} {
		for _, n := range []int{0, 1, 2, 3, 7, 100, 4096, 70000} {
			syms := randomSymbols(rng, n, 300)
			blob, ok := EncodeInterleavedBlock(syms, ways)
			if !ok {
				t.Fatalf("ways=%d n=%d: encode failed", ways, n)
			}
			got, used, err := DecodeInterleavedBlock(blob)
			if err != nil {
				t.Fatalf("ways=%d n=%d: decode: %v", ways, n, err)
			}
			if used != len(blob) {
				t.Fatalf("ways=%d n=%d: consumed %d of %d bytes", ways, n, used, len(blob))
			}
			if len(got) != len(syms) {
				t.Fatalf("ways=%d n=%d: got %d symbols, want %d", ways, n, len(got), len(syms))
			}
			for i := range syms {
				if got[i] != syms[i] {
					t.Fatalf("ways=%d n=%d: symbol %d: got %d want %d", ways, n, i, got[i], syms[i])
				}
			}
		}
	}
}

func TestInterleavedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	syms := randomSymbols(rng, 5000, 200)
	a, ok := EncodeInterleavedBlock(syms, DefaultWays)
	if !ok {
		t.Fatal("encode failed")
	}
	b, ok := EncodeInterleavedBlock(syms, DefaultWays)
	if !ok {
		t.Fatal("encode failed")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("interleaved encoding is not deterministic")
	}
}

func TestInterleavedWaysClamped(t *testing.T) {
	syms := []uint32{1, 2, 3, 1, 2, 3, 1, 1}
	for _, ways := range []int{-3, 0, maxWays + 1, 1000} {
		blob, ok := EncodeInterleavedBlock(syms, ways)
		if !ok {
			t.Fatalf("ways=%d: encode failed", ways)
		}
		got, _, err := DecodeInterleavedBlock(blob)
		if err != nil {
			t.Fatalf("ways=%d: decode: %v", ways, err)
		}
		if len(got) != len(syms) {
			t.Fatalf("ways=%d: length mismatch", ways)
		}
	}
}

func TestInterleavedMatchesSingleStateContent(t *testing.T) {
	// ways=1 interleaved and classic EncodeBlock code the same model; the
	// framing differs (ways byte) but both must round-trip the same symbols.
	rng := rand.New(rand.NewSource(3))
	syms := randomSymbols(rng, 2048, 100)
	ib, ok := EncodeInterleavedBlock(syms, 1)
	if !ok {
		t.Fatal("interleaved encode failed")
	}
	sb, ok := EncodeBlock(syms)
	if !ok {
		t.Fatal("classic encode failed")
	}
	ig, _, err := DecodeInterleavedBlock(ib)
	if err != nil {
		t.Fatal(err)
	}
	sg, _, err := DecodeBlock(sb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if ig[i] != sg[i] || ig[i] != syms[i] {
			t.Fatalf("symbol %d diverges: interleaved=%d classic=%d want=%d", i, ig[i], sg[i], syms[i])
		}
	}
}

func TestInterleavedAlphabetOverflow(t *testing.T) {
	syms := make([]uint32, MaxAlphabet+1)
	for i := range syms {
		syms[i] = uint32(i)
	}
	if _, ok := EncodeInterleavedBlock(syms, DefaultWays); ok {
		t.Fatal("expected encode failure for oversized alphabet")
	}
}

func TestInterleavedMaxSymsBudget(t *testing.T) {
	syms := make([]uint32, 100)
	blob, ok := EncodeInterleavedBlock(syms, DefaultWays)
	if !ok {
		t.Fatal("encode failed")
	}
	if _, _, err := DecodeInterleavedBlockMax(blob, 99); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("budget 99 for 100 symbols: got %v, want ErrCorrupt", err)
	}
	if _, _, err := DecodeInterleavedBlockMax(blob, 100); err != nil {
		t.Fatalf("budget 100 for 100 symbols: %v", err)
	}
	if _, _, err := DecodeInterleavedBlockMax(blob, -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative budget: got %v, want ErrCorrupt", err)
	}
}

func TestInterleavedCorruptInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	syms := randomSymbols(rng, 1000, 64)
	blob, ok := EncodeInterleavedBlock(syms, DefaultWays)
	if !ok {
		t.Fatal("encode failed")
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": blob[:len(blob)/2],
		"one byte":  {0x01},
	}
	// A zero or oversized ways byte must be rejected. Locate it: it sits
	// right after the symbol-count varint, which follows the table.
	tb, okTB := TableBytes(blob)
	if !okTB {
		t.Fatal("TableBytes failed on valid blob")
	}
	pos := tb
	if _, err := readUvarint(blob, &pos); err != nil {
		t.Fatal(err)
	}
	zw := append([]byte(nil), blob...)
	zw[pos] = 0
	cases["zero ways"] = zw
	bw := append([]byte(nil), blob...)
	bw[pos] = maxWays + 1
	cases["oversized ways"] = bw
	for name, src := range cases {
		if _, _, err := DecodeInterleavedBlock(src); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	// Byte flips anywhere must either decode to something or fail with
	// ErrCorrupt — never panic, never succeed with inconsistent state.
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), blob...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		got, _, err := DecodeInterleavedBlock(mut)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trial %d: non-ErrCorrupt error %v", trial, err)
		}
		_ = got
	}
}

func BenchmarkInterleavedDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := randomSymbols(rng, 1<<18, 256)
	for _, ways := range []int{1, 2, 4, 8} {
		blob, ok := EncodeInterleavedBlock(syms, ways)
		if !ok {
			b.Fatal("encode failed")
		}
		b.Run(map[int]string{1: "ways1", 2: "ways2", 4: "ways4", 8: "ways8"}[ways], func(b *testing.B) {
			b.SetBytes(int64(len(syms)))
			for i := 0; i < b.N; i++ {
				if _, _, err := DecodeInterleavedBlock(blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClassicDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := randomSymbols(rng, 1<<18, 256)
	blob, ok := EncodeBlock(syms)
	if !ok {
		b.Fatal("encode failed")
	}
	b.SetBytes(int64(len(syms)))
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBlock(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInterleavedStreamsStayCompressible pins the per-way framing choice:
// on a highly redundant symbol stream, a single rANS state emits
// near-periodic renormalization bytes that a downstream lossless pass
// compresses heavily. Byte-interleaving W ways into one shared stream
// (the rans_static layout) multiplexes W unrelated sequences and destroys
// those patterns — an earlier draft of this encoder lost 4x blob size on
// near-constant blocks that way. With per-way concatenated sub-streams,
// flate over the interleaved block must stay within 1.5x of flate over
// the classic block.
func TestInterleavedStreamsStayCompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	syms := make([]uint32, 200000)
	for i := range syms {
		// Mostly a repeating short pattern with occasional noise: the shape
		// of quantization bins on a smooth field, where inter-symbol
		// correlation survives order-0 entropy coding.
		if rng.Intn(50) == 0 {
			syms[i] = uint32(rng.Intn(64))
		} else {
			syms[i] = uint32(i % 3)
		}
	}
	classic, ok := EncodeBlock(syms)
	if !ok {
		t.Fatal("classic encode failed")
	}
	inter, ok := EncodeInterleavedBlock(syms, DefaultWays)
	if !ok {
		t.Fatal("interleaved encode failed")
	}
	cz := flateLen(t, classic)
	iz := flateLen(t, inter)
	if float64(iz) > 1.5*float64(cz) {
		t.Fatalf("flate(interleaved)=%d bytes vs flate(classic)=%d: interleaving destroyed downstream compressibility", iz, cz)
	}
}

func flateLen(t *testing.T, src []byte) int {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}
