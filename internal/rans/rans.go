// Package rans implements a static range asymmetric numeral system (rANS)
// entropy coder over uint32 symbol alphabets — a modern alternative to the
// Huffman stage of the SZ3/CliZ pipeline (the same family as the FSE coder
// inside Zstd). Frequencies are scaled to a 12-bit total; decoding uses a
// 4096-entry slot table.
package rans

import (
	"encoding/binary"
	"errors"
	"sort"
)

const (
	scaleBits  = 12
	scaleTotal = 1 << scaleBits
	ransL      = 1 << 16 // lower renormalization bound
)

// ErrCorrupt reports a malformed rANS block.
var ErrCorrupt = errors.New("rans: corrupt block")

// MaxAlphabet is the largest supported distinct-symbol count (every symbol
// needs at least one slot of the 12-bit total).
const MaxAlphabet = scaleTotal

// freqTable holds scaled frequencies and cumulative starts.
type freqTable struct {
	syms []uint32 // sorted distinct symbols
	freq []uint32 // scaled frequency per symbol (≥ 1, sums to scaleTotal)
	cum  []uint32 // cumulative start per symbol
	// slot[s] is the symbol index owning slot s.
	slot []uint16
	// index of each symbol for encoding.
	index map[uint32]int
}

// buildTable scales raw counts to exactly scaleTotal using the
// largest-remainder method with a floor of 1 slot per symbol.
func buildTable(counts map[uint32]uint64) (*freqTable, bool) {
	n := len(counts)
	if n == 0 || n > MaxAlphabet {
		return nil, false
	}
	t := &freqTable{
		syms:  make([]uint32, 0, n),
		index: make(map[uint32]int, n),
	}
	var total uint64
	for s, c := range counts {
		t.syms = append(t.syms, s)
		total += c
	}
	sort.Slice(t.syms, func(i, j int) bool { return t.syms[i] < t.syms[j] })
	t.freq = make([]uint32, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := uint32(0)
	for i, s := range t.syms {
		t.index[s] = i
		exact := float64(counts[s]) / float64(total) * float64(scaleTotal)
		f := uint32(exact)
		if f < 1 {
			f = 1
		}
		t.freq[i] = f
		assigned += f
		rems[i] = rem{i, exact - float64(f)}
	}
	// Adjust to hit scaleTotal exactly: give leftovers to the largest
	// remainders, or strip from the largest frequencies.
	if assigned < scaleTotal {
		sort.Slice(rems, func(a, b int) bool {
			if rems[a].frac != rems[b].frac {
				return rems[a].frac > rems[b].frac
			}
			return rems[a].idx < rems[b].idx // determinism on ties
		})
		left := scaleTotal - assigned
		for i := 0; left > 0; i = (i + 1) % n {
			t.freq[rems[i].idx]++
			left--
		}
	} else if assigned > scaleTotal {
		over := assigned - scaleTotal
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if t.freq[order[a]] != t.freq[order[b]] {
				return t.freq[order[a]] > t.freq[order[b]]
			}
			return order[a] < order[b] // determinism on ties
		})
		for i := 0; over > 0; i = (i + 1) % n {
			if t.freq[order[i]] > 1 {
				t.freq[order[i]]--
				over--
			}
		}
	}
	t.cum = make([]uint32, n+1)
	for i := 0; i < n; i++ {
		t.cum[i+1] = t.cum[i] + t.freq[i]
	}
	t.slot = make([]uint16, scaleTotal)
	for i := 0; i < n; i++ {
		for s := t.cum[i]; s < t.cum[i+1]; s++ {
			t.slot[s] = uint16(i)
		}
	}
	return t, true
}

// serialize writes sorted symbols (delta varints) and frequencies.
func (t *freqTable) serialize(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(t.syms)))
	prev := uint32(0)
	for i, s := range t.syms {
		d := uint64(s)
		if i > 0 {
			d = uint64(s - prev)
		}
		prev = s
		dst = appendUvarint(dst, d)
		dst = appendUvarint(dst, uint64(t.freq[i]))
	}
	return dst
}

// TableBytes reports how many leading bytes of an encoded block hold the
// frequency table (observability helper; ok=false on malformed input).
func TableBytes(src []byte) (int, bool) {
	pos := 0
	if _, err := parseTable(src, &pos); err != nil {
		return 0, false
	}
	return pos, true
}

func parseTable(src []byte, pos *int) (*freqTable, error) {
	n, err := readUvarint(src, pos)
	if err != nil || n == 0 || n > MaxAlphabet {
		return nil, ErrCorrupt
	}
	t := &freqTable{
		syms:  make([]uint32, n),
		freq:  make([]uint32, n),
		index: make(map[uint32]int, n),
	}
	var cur uint32
	var total uint32
	for i := uint64(0); i < n; i++ {
		d, err := readUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		f, err := readUvarint(src, pos)
		if err != nil || f == 0 || f > scaleTotal {
			return nil, ErrCorrupt
		}
		if i == 0 {
			cur = uint32(d)
		} else {
			cur += uint32(d)
		}
		t.syms[i] = cur
		t.freq[i] = uint32(f)
		t.index[cur] = int(i)
		total += uint32(f)
	}
	if total != scaleTotal {
		return nil, ErrCorrupt
	}
	t.cum = make([]uint32, n+1)
	for i := 0; i < int(n); i++ {
		t.cum[i+1] = t.cum[i] + t.freq[i]
	}
	t.slot = make([]uint16, scaleTotal)
	for i := 0; i < int(n); i++ {
		for s := t.cum[i]; s < t.cum[i+1]; s++ {
			t.slot[s] = uint16(i)
		}
	}
	return t, nil
}

// EncodeBlock compresses symbols into a self-contained block:
// table | varint count | varint stream length | rANS stream.
// It returns ok=false when the alphabet exceeds MaxAlphabet (callers fall
// back to Huffman).
func EncodeBlock(symbols []uint32) ([]byte, bool) {
	counts := make(map[uint32]uint64)
	for _, s := range symbols {
		counts[s]++
	}
	if len(symbols) == 0 {
		out := appendUvarint(nil, 0) // empty table sentinel handled on decode
		out = appendUvarint(out, 0)
		return out, true
	}
	t, ok := buildTable(counts)
	if !ok {
		return nil, false
	}
	out := t.serialize(nil)
	out = appendUvarint(out, uint64(len(symbols)))
	// rANS encodes in reverse so the decoder runs forward.
	var stream []byte
	x := uint32(ransL)
	for i := len(symbols) - 1; i >= 0; i-- {
		idx := t.index[symbols[i]]
		f := t.freq[idx]
		// Renormalize: keep x < (L>>scaleBits)<<8 * f after encoding.
		xmax := ((ransL >> scaleBits) << 8) * f
		for x >= xmax {
			stream = append(stream, byte(x))
			x >>= 8
		}
		x = ((x / f) << scaleBits) + (x % f) + t.cum[idx]
	}
	var final [4]byte
	binary.LittleEndian.PutUint32(final[:], x)
	// The decoder reads the final state first, then the stream backwards —
	// reverse it here so decoding is a forward scan.
	for i, j := 0, len(stream)-1; i < j; i, j = i+1, j-1 {
		stream[i], stream[j] = stream[j], stream[i]
	}
	out = appendUvarint(out, uint64(len(stream)+4))
	out = append(out, final[:]...)
	out = append(out, stream...)
	return out, true
}

// MaxBlockSyms is the default cap on the declared symbol count of a
// block when the caller supplies no tighter budget. A rANS stream with a
// single-symbol alphabet legitimately decodes arbitrarily many symbols
// from a 4-byte stream (the state never changes), so the count cannot be
// bounded by payload length; it must be bounded by how many symbols the
// caller can possibly want.
const MaxBlockSyms = 1 << 31

// DecodeBlock reverses EncodeBlock, returning the symbols and the number of
// bytes consumed. The declared symbol count is capped at MaxBlockSyms;
// decoders that know their output volume should call DecodeBlockMax with
// the tighter budget.
func DecodeBlock(src []byte) ([]uint32, int, error) {
	return DecodeBlockMax(src, MaxBlockSyms)
}

// DecodeBlockMax is DecodeBlock with a caller-supplied upper bound on the
// declared symbol count. A block declaring more than maxSyms symbols is
// rejected as corrupt before any allocation, so a hostile few-byte blob
// cannot force a huge allocation.
func DecodeBlockMax(src []byte, maxSyms int) ([]uint32, int, error) {
	pos := 0
	nSyms, err := readUvarint(src, &pos)
	if err != nil {
		return nil, 0, ErrCorrupt
	}
	if nSyms == 0 {
		// Empty block: just the count sentinel.
		cnt, err := readUvarint(src, &pos)
		if err != nil || cnt != 0 {
			return nil, 0, ErrCorrupt
		}
		return nil, pos, nil
	}
	// Rewind: the first varint was the table size.
	pos = 0
	t, err := parseTable(src, &pos)
	if err != nil {
		return nil, 0, err
	}
	count, err := readUvarint(src, &pos)
	if err != nil {
		return nil, 0, ErrCorrupt
	}
	slen, err := readUvarint(src, &pos)
	if err != nil || slen < 4 || uint64(pos)+slen > uint64(len(src)) {
		return nil, 0, ErrCorrupt
	}
	stream := src[pos : pos+int(slen)]
	pos += int(slen)
	x := binary.LittleEndian.Uint32(stream[:4])
	sp := 4
	if maxSyms < 0 || count > uint64(maxSyms) {
		return nil, 0, ErrCorrupt
	}
	out := make([]uint32, count)
	for i := range out {
		slot := x & (scaleTotal - 1)
		idx := int(t.slot[slot])
		f := t.freq[idx]
		x = f*(x>>scaleBits) + slot - t.cum[idx]
		for x < ransL {
			if sp >= len(stream) {
				return nil, 0, ErrCorrupt
			}
			x = x<<8 | uint32(stream[sp])
			sp++
		}
		out[i] = t.syms[idx]
	}
	if x != ransL || sp != len(stream) {
		return nil, 0, ErrCorrupt
	}
	return out, pos, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func readUvarint(src []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(src[*pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	*pos += n
	return v, nil
}
