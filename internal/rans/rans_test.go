package rans

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cliz/internal/huffman"
)

func TestRoundTripSimple(t *testing.T) {
	syms := []uint32{1, 1, 1, 2, 2, 3, 7, 7, 7, 7, 7}
	blob, ok := EncodeBlock(syms)
	if !ok {
		t.Fatal("encode refused")
	}
	got, n, err := DecodeBlock(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Fatalf("consumed %d of %d", n, len(blob))
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatalf("got %v want %v", got, syms)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	blob, ok := EncodeBlock(nil)
	if !ok {
		t.Fatal("empty refused")
	}
	got, _, err := DecodeBlock(blob)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty decode: %v %v", got, err)
	}
	blob, ok = EncodeBlock([]uint32{42})
	if !ok {
		t.Fatal("single refused")
	}
	got, _, err = DecodeBlock(blob)
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single decode: %v %v", got, err)
	}
}

func TestSingleSymbolRun(t *testing.T) {
	syms := make([]uint32, 100000)
	for i := range syms {
		syms[i] = 7
	}
	blob, ok := EncodeBlock(syms)
	if !ok {
		t.Fatal("refused")
	}
	// A degenerate distribution should compress to nearly nothing.
	if len(blob) > 100 {
		t.Fatalf("constant run used %d bytes", len(blob))
	}
	got, _, err := DecodeBlock(blob)
	if err != nil || len(got) != len(syms) {
		t.Fatalf("decode: %d %v", len(got), err)
	}
	for i := range got {
		if got[i] != 7 {
			t.Fatalf("got[%d] = %d", i, got[i])
		}
	}
}

func TestCompressionBeatsOrMatchesHuffmanOnSkewedBins(t *testing.T) {
	// Quantization-bin-like data: sharp peak at the centre.
	// A very sharp peak (sub-bit entropy) is where Huffman's 1-bit-per-
	// symbol floor hurts and rANS shines — exactly the regime of
	// quantization bins from a well-predicted smooth field.
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 200000)
	for i := range syms {
		syms[i] = uint32(32768 + int32(rng.NormFloat64()*0.4))
	}
	rblob, ok := EncodeBlock(syms)
	if !ok {
		t.Fatal("refused")
	}
	hblob := huffman.EncodeBlock(syms)
	// rANS has sub-bit precision, Huffman ≥1 bit/symbol: on a sharply
	// peaked distribution rANS should win clearly.
	if float64(len(rblob)) > 0.95*float64(len(hblob)) {
		t.Fatalf("rANS %d bytes vs huffman %d — expected a clear win", len(rblob), len(hblob))
	}
	got, _, err := DecodeBlock(rblob)
	if err != nil || !reflect.DeepEqual(got, syms) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestAlphabetLimit(t *testing.T) {
	syms := make([]uint32, MaxAlphabet+10)
	for i := range syms {
		syms[i] = uint32(i) // too many distinct symbols
	}
	if _, ok := EncodeBlock(syms); ok {
		t.Fatal("oversized alphabet accepted")
	}
	// Exactly at the limit must work.
	at := make([]uint32, MaxAlphabet)
	for i := range at {
		at[i] = uint32(i)
	}
	blob, ok := EncodeBlock(at)
	if !ok {
		t.Fatal("alphabet at limit refused")
	}
	got, _, err := DecodeBlock(blob)
	if err != nil || !reflect.DeepEqual(got, at) {
		t.Fatalf("limit round trip: %v", err)
	}
}

func TestFrequencyScalingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		counts := map[uint32]uint64{}
		n := rng.Intn(500) + 1
		for i := 0; i < n; i++ {
			counts[uint32(rng.Intn(2000))] = uint64(rng.Intn(100000) + 1)
		}
		tbl, ok := buildTable(counts)
		if !ok {
			t.Fatal("refused")
		}
		var sum uint32
		for _, f := range tbl.freq {
			if f == 0 {
				t.Fatal("zero frequency")
			}
			sum += f
		}
		if sum != scaleTotal {
			t.Fatalf("frequencies sum to %d", sum)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3000)
		alpha := rng.Intn(300) + 1
		syms := make([]uint32, n)
		for i := range syms {
			syms[i] = uint32(rng.Intn(alpha))
		}
		blob, ok := EncodeBlock(syms)
		if !ok {
			return false
		}
		got, _, err := DecodeBlock(blob)
		if err != nil {
			return false
		}
		if len(got) != len(syms) {
			return false
		}
		return reflect.DeepEqual(got, syms) || (len(got) == 0 && len(syms) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	blob, _ := EncodeBlock([]uint32{1, 2, 3, 1, 2, 3, 1, 1})
	for cut := 1; cut < len(blob); cut++ {
		if got, _, err := DecodeBlock(blob[:cut]); err == nil && len(got) == 8 {
			t.Fatalf("truncation at %d decoded fully", cut)
		}
	}
	if _, _, err := DecodeBlock(nil); err == nil {
		t.Fatal("nil accepted")
	}
	// Flip bytes in the stream: must not panic (errors allowed, and some
	// flips may decode to wrong-but-valid symbols — that is the lossless
	// wrapper's concern).
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x5a
		_, _, _ = DecodeBlock(bad)
	}
}
