package service

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"cliz"
)

// Signature keys the tuned-pipeline cache by dataset family: the paper's
// offline/online split says one AutoTune per climate model serves every
// field of that model, so the key is what defines a family — the grid
// shape, the semantic axes, the error budget, and a coarse statistical
// fingerprint of the values. The fingerprint is quantized to two
// significant digits: fields of one model differ in exact values but not
// in scale, and over-precise stats would shatter the families the cache
// exists to merge.
func Signature(meta FieldMeta, data []float32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "dims=%s|lead=%d|per=%t|rel=%.2e|abs=%.2e",
		dimsString(meta.Dims), meta.Lead, meta.Periodic, meta.Bound.Rel, meta.Bound.Abs)
	// Deterministic strided sample of up to 4096 points.
	stride := len(data) / 4096
	if stride < 1 {
		stride = 1
	}
	var lo, hi float32
	var sum, sum2 float64
	n := 0
	first := true
	for i := 0; i < len(data); i += stride {
		v := data[i]
		// Skip every non-finite value, not just NaN: a single ±Inf sample
		// poisons lo/hi and the running sums, degenerating the fingerprint
		// to "rng=+Inf" and merging unrelated families under one key.
		if v != v || math.IsInf(float64(v), 0) {
			continue
		}
		if first {
			lo, hi, first = v, v, false
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += float64(v)
		sum2 += float64(v) * float64(v)
		n++
	}
	if n == 0 {
		b.WriteString("|stats=empty")
		return b.String()
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	// Range-relative fingerprint: the scale is the value range (2 sig
	// digits) and the shape is where the mean sits in it plus the spread,
	// both as coarse fractions. Absolute quantization would split families
	// whose values hover near zero (0 vs 1e-4 differ in every digit).
	rng := float64(hi) - float64(lo)
	if rng <= 0 {
		fmt.Fprintf(&b, "|stats=const,%.1e", lo)
		return b.String()
	}
	fmt.Fprintf(&b, "|stats=rng%.1e,m%.2f,s%.2f",
		rng, (mean-float64(lo))/rng, math.Sqrt(variance)/rng)
	return b.String()
}

// tuneResult is one cached AutoTune outcome.
type tuneResult struct {
	pipe   cliz.Pipeline
	report cliz.TuneReport
}

// flight is one in-progress tune shared by concurrent requests for the
// same signature (singleflight): followers wait on done instead of
// burning a worker slot on a duplicate search.
type flight struct {
	done chan struct{}
	res  tuneResult
	err  error
}

// pipelineCache is a bounded LRU of tuned pipelines keyed by Signature,
// with singleflight semantics on misses. Safe for concurrent use.
type pipelineCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // value: *cacheEntry
	inFly   map[string]*flight
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	res tuneResult
}

func newPipelineCache(capacity int) *pipelineCache {
	return &pipelineCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		inFly:   make(map[string]*flight),
	}
}

// Get returns the tuned pipeline for key, running tune exactly once per
// key across concurrent callers. hit reports whether the result came from
// the cache. A failed tune is not cached: the next request retries.
func (c *pipelineCache) Get(ctx context.Context, key string,
	tune func() (cliz.Pipeline, *cliz.TuneReport, error)) (tuneResult, bool, error) {

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.inFly[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			// A follower of a successful flight is a cache hit in every
			// sense that matters: it did not run AutoTune.
			if f.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
			}
			return f.res, f.err == nil, f.err
		case <-ctx.Done():
			return tuneResult{}, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inFly[key] = f
	c.misses++
	c.mu.Unlock()

	pipe, rep, err := tune()
	if err == nil {
		f.res = tuneResult{pipe: pipe, report: *rep}
	}
	f.err = err

	c.mu.Lock()
	delete(c.inFly, key)
	if err == nil {
		c.insert(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, false, err
}

// insert adds key (caller holds mu), evicting the LRU entry past capacity.
func (c *pipelineCache) insert(key string, res tuneResult) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.order.Remove(last)
	}
}

// Stats reports cumulative hits, misses and current size.
func (c *pipelineCache) Stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
