package service

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cliz"
	"cliz/internal/datagen"
)

// tuneStub returns a tune func that counts invocations and yields a real
// (default) pipeline so the cache stores something valid.
func tuneStub(t *testing.T, calls *atomic.Int64) func() (cliz.Pipeline, *cliz.TuneReport, error) {
	t.Helper()
	ids, err := datagen.ByName("SSH", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	ds := &cliz.Dataset{Name: "x", Data: ids.Data, Dims: ids.Dims,
		Lead: cliz.LeadKind(ids.Lead), Periodic: ids.Periodic}
	pipe, err := cliz.DefaultPipeline(ds)
	if err != nil {
		t.Fatal(err)
	}
	return func() (cliz.Pipeline, *cliz.TuneReport, error) {
		calls.Add(1)
		return pipe, &cliz.TuneReport{Period: 12}, nil
	}
}

// TestCacheSingleflight proves concurrent misses of one key collapse to a
// single tune invocation, with every caller getting the result.
func TestCacheSingleflight(t *testing.T) {
	c := newPipelineCache(8)
	var calls atomic.Int64
	gate := make(chan struct{})
	ids, _ := datagen.ByName("SSH", 0.03)
	ds := &cliz.Dataset{Name: "x", Data: ids.Data, Dims: ids.Dims,
		Lead: cliz.LeadKind(ids.Lead), Periodic: ids.Periodic}
	pipe, err := cliz.DefaultPipeline(ds)
	if err != nil {
		t.Fatal(err)
	}
	tune := func() (cliz.Pipeline, *cliz.TuneReport, error) {
		calls.Add(1)
		<-gate // hold the flight open until every follower has joined
		return pipe, &cliz.TuneReport{Period: 7}, nil
	}

	const n = 16
	var wg sync.WaitGroup
	results := make([]tuneResult, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			res, _, err := c.Get(context.Background(), "family-A", tune)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("tune ran %d times for one key, want 1", got)
	}
	for i, r := range results {
		if r.report.Period != 7 {
			t.Fatalf("caller %d got %+v", i, r.report)
		}
	}
	hits, misses, size := c.Stats()
	if misses != 1 || size != 1 {
		t.Fatalf("stats: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

// TestCacheLRUEviction fills past capacity and checks the oldest family
// falls out while a freshly-touched one survives.
func TestCacheLRUEviction(t *testing.T) {
	c := newPipelineCache(2)
	var calls atomic.Int64
	tune := tuneStub(t, &calls)
	ctx := context.Background()

	for _, key := range []string{"a", "b"} {
		if _, hit, err := c.Get(ctx, key, tune); err != nil || hit {
			t.Fatalf("%s: hit=%v err=%v", key, hit, err)
		}
	}
	// Touch "a" so "b" is the LRU, then insert "c" to evict it.
	if _, hit, _ := c.Get(ctx, "a", tune); !hit {
		t.Fatal("a should hit")
	}
	if _, hit, _ := c.Get(ctx, "c", tune); hit {
		t.Fatal("c should miss")
	}
	if _, hit, _ := c.Get(ctx, "a", tune); !hit {
		t.Fatal("a should survive eviction")
	}
	if _, hit, _ := c.Get(ctx, "b", tune); hit {
		t.Fatal("b should have been evicted")
	}
	if got := calls.Load(); got != 4 { // a, b, c, b-again
		t.Fatalf("tune ran %d times, want 4", got)
	}
}

// TestCacheErrorNotCached proves a failed tune is retried, not pinned.
func TestCacheErrorNotCached(t *testing.T) {
	c := newPipelineCache(4)
	var calls atomic.Int64
	boom := fmt.Errorf("transient")
	fail := func() (cliz.Pipeline, *cliz.TuneReport, error) {
		calls.Add(1)
		return cliz.Pipeline{}, nil, boom
	}
	ctx := context.Background()
	if _, _, err := c.Get(ctx, "k", fail); err != boom {
		t.Fatalf("err = %v", err)
	}
	ok := tuneStub(t, &calls)
	if _, hit, err := c.Get(ctx, "k", ok); err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v", hit, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
}

// TestSignatureFamilies checks the cache key merges what it should merge
// and splits what it must split.
func TestSignatureFamilies(t *testing.T) {
	meta := FieldMeta{Dims: []int{12, 8, 8}, Bound: cliz.Rel(1e-3),
		Lead: cliz.LeadTime, Periodic: true, Volume: 768}
	data := make([]float32, 768)
	for i := range data {
		data[i] = float32(i % 97)
	}
	base := Signature(meta, data)

	// Tiny perturbations (same field family, different snapshot) keep the key.
	perturbed := append([]float32(nil), data...)
	for i := range perturbed {
		perturbed[i] += 1e-4
	}
	if got := Signature(meta, perturbed); got != base {
		t.Errorf("perturbed data changed the key:\n%s\n%s", base, got)
	}

	// Different dims, bound, lead or scale must split.
	m2 := meta
	m2.Dims = []int{8, 12, 8}
	if Signature(m2, data) == base {
		t.Error("different dims share a key")
	}
	m3 := meta
	m3.Bound = cliz.Rel(1e-2)
	if Signature(m3, data) == base {
		t.Error("different bound shares a key")
	}
	m4 := meta
	m4.Periodic = false
	if Signature(m4, data) == base {
		t.Error("different periodicity shares a key")
	}
	scaled := append([]float32(nil), data...)
	for i := range scaled {
		scaled[i] *= 1000
	}
	if Signature(meta, scaled) == base {
		t.Error("1000x-scaled data shares a key")
	}
}

// TestSignatureNonFinite pins the fingerprint against NaN and ±Inf samples.
// The regression: Signature skipped NaN but admitted Inf, so a single Inf
// sample degenerated the range to +Inf and merged unrelated families under
// one key. Non-finite values must be invisible to the fingerprint, and data
// with nothing finite must key as "empty", never as garbage stats.
func TestSignatureNonFinite(t *testing.T) {
	meta := FieldMeta{Dims: []int{16, 8, 8}, Bound: cliz.Rel(1e-3),
		Lead: cliz.LeadTime, Volume: 1024}
	mk := func(f func(i int) float32) []float32 {
		data := make([]float32, 1024)
		for i := range data {
			data[i] = f(i)
		}
		return data
	}
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	small := mk(func(i int) float32 { return float32(i % 97) })
	big := mk(func(i int) float32 { return float32(i%97) * 1e6 })

	poison := func(data []float32, v float32) []float32 {
		out := append([]float32(nil), data...)
		out[3], out[700] = v, -v
		return out
	}

	cases := []struct {
		name string
		a, b []float32
		same bool
	}{
		{"Inf samples do not change the family", small, poison(small, inf), true},
		{"NaN samples do not change the family", small, poison(small, nan), true},
		{"Inf-bearing families of different scale stay split", poison(small, inf), poison(big, inf), false},
		{"all-NaN and all-Inf collapse to the same empty key", mk(func(int) float32 { return nan }), mk(func(int) float32 { return inf }), true},
		{"all-NaN differs from finite data", mk(func(int) float32 { return nan }), small, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := Signature(meta, tc.a), Signature(meta, tc.b)
			if (ka == kb) != tc.same {
				t.Errorf("keys:\n%s\n%s\nsame=%v, want %v", ka, kb, ka == kb, tc.same)
			}
		})
	}

	// No key may ever carry a non-finite statistic.
	for _, data := range [][]float32{poison(small, inf), poison(small, nan),
		mk(func(int) float32 { return inf }), mk(func(int) float32 { return nan })} {
		if key := Signature(meta, data); strings.Contains(key, "Inf") || strings.Contains(key, "NaN") {
			t.Errorf("non-finite statistic leaked into the key: %s", key)
		}
	}
	if key := Signature(meta, mk(func(int) float32 { return nan })); !strings.Contains(key, "stats=empty") {
		t.Errorf("all-NaN data should key as empty, got %s", key)
	}
}
