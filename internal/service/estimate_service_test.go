package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cliz"
)

// TestTuneEstimateMode is the end-to-end check of the estimate=1 path: a
// cold /v1/tune?estimate=1 must answer from the fast estimator (no candidate
// search), announce the decision in the X-Cliz-Tune-Mode header and the JSON
// body, land in the pipeline cache, and show up in the /metrics mode
// counters.
func TestTuneEstimateMode(t *testing.T) {
	_, ts := testServer(t, Config{})
	_, body, dims := testField(t)
	q := "?dims=" + dims + "&rel=1e-2&lead=time&periodic=1&estimate=1"

	var first tuneResponse
	resp := post(t, ts.URL+"/v1/tune"+q, body)
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold estimate tune: code %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cliz-Tune-Mode"); got != "estimate" {
		t.Fatalf("X-Cliz-Tune-Mode = %q, want estimate (body %+v)", got, first)
	}
	if first.Mode != "estimate" || first.Cache != "miss" {
		t.Fatalf("cold estimate tune: mode %q cache %q, want estimate/miss", first.Mode, first.Cache)
	}
	// The whole point: the full candidate search did not run.
	if first.PipelinesTested != 0 {
		t.Errorf("estimate mode tested %d pipelines; the search should have been skipped", first.PipelinesTested)
	}
	if first.Confidence < cliz.MinEstimateConfidence {
		t.Errorf("estimate answered below the confidence floor: %.2f", first.Confidence)
	}
	if first.Pipeline == "" || first.EstimatedRatio <= 1 {
		t.Errorf("empty estimate: %+v", first)
	}

	// The estimate landed in the cache: the rerun answers as a hit.
	var second tuneResponse
	resp = post(t, ts.URL+"/v1/tune"+q, body)
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Cliz-Tune-Mode"); got != "cache" {
		t.Errorf("second tune X-Cliz-Tune-Mode = %q, want cache", got)
	}
	if second.Mode != "cache" || second.Pipeline != first.Pipeline {
		t.Errorf("second tune: mode %q pipeline %q, want cache/%q", second.Mode, second.Pipeline, first.Pipeline)
	}

	// A plain tune of a different family still runs the search.
	var searched tuneResponse
	resp = post(t, ts.URL+"/v1/tune?dims="+dims+"&rel=1e-3&lead=time&periodic=1", body)
	if err := json.NewDecoder(resp.Body).Decode(&searched); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if searched.Mode != "search" || searched.PipelinesTested == 0 {
		t.Errorf("plain tune: mode %q tested %d, want search with a real candidate count",
			searched.Mode, searched.PipelinesTested)
	}

	// All three decisions are visible in /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, mr.Body))
	mr.Body.Close()
	for _, want := range []string{
		`cliz_tune_estimate_total{mode="estimate"} 1`,
		`cliz_tune_estimate_total{mode="cache"} 1`,
		`cliz_tune_estimate_total{mode="search"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %q in:\n%s", want, grepLines(metrics, "tune_estimate"))
		}
	}
}

// TestCompressEstimateMode checks the tuned-compress path carries the same
// decision: tune=1&estimate=1 answers from the estimator and says so.
func TestCompressEstimateMode(t *testing.T) {
	_, ts := testServer(t, Config{})
	_, body, dims := testField(t)

	resp := post(t, ts.URL+"/v1/compress?dims="+dims+"&rel=1e-2&lead=time&periodic=1&tune=1&estimate=1", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cliz-Tune-Mode"); got != "estimate" {
		t.Errorf("X-Cliz-Tune-Mode = %q, want estimate", got)
	}
	if got := resp.Header.Get("X-Cliz-Cache"); got != "miss" {
		t.Errorf("X-Cliz-Cache = %q, want miss", got)
	}

	// Untuned compress carries no tune-mode header at all.
	resp = post(t, ts.URL+"/v1/compress?dims="+dims+"&rel=1e-2&lead=time&periodic=1", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Cliz-Tune-Mode"); got != "" {
		t.Errorf("untuned compress set X-Cliz-Tune-Mode = %q", got)
	}
}

// TestAcquireFailureStatus pins the admission-control status accounting:
// a full queue is a 429 (rejected counter, Retry-After), but a caller that
// gave up while queued is a 499 — and the metrics must record the status
// actually written, not 429 for both.
func TestAcquireFailureStatus(t *testing.T) {
	s, err := NewServer(Config{Workers: 1, Queue: 1, RequestTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the worker slot and the single queue slot.
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		rel, err := s.acquire(waiterCtx)
		if rel != nil {
			rel()
		}
		waiterDone <- err
	}()
	waitFor(t, func() bool { return s.QueueDepth() == 2 })

	h := s.heavy("compress", func(http.ResponseWriter, *http.Request) {
		t.Error("handler ran on a saturated server")
	})

	// Branch 1: queue full -> 429 with Retry-After, counted as rejected.
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/compress", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated: code %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Branch 2: client gave up while queued -> the status written is 499,
	// not 429, and the rejected counter does not move.
	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return s.QueueDepth() == 1 })
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/compress", nil).WithContext(canceled))
	if rec.Code != 499 {
		t.Fatalf("canceled while queued: code %d, want 499", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Error("499 must not carry Retry-After")
	}
	release()

	// The metrics recorded each failure under the status actually written.
	mrec := httptest.NewRecorder()
	s.handleMetrics(mrec, httptest.NewRequest("GET", "/metrics", nil))
	metrics := mrec.Body.String()
	for _, want := range []string{
		`cliz_requests_total{endpoint="compress",code="429"} 1`,
		`cliz_requests_total{endpoint="compress",code="499"} 1`,
		`cliz_rejected_total{endpoint="compress"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %q in:\n%s", want, grepLines(metrics, "compress"))
		}
	}
	if strings.Contains(metrics, `cliz_requests_total{endpoint="compress",code="429"} 2`) {
		t.Error("cancellation was miscounted as a 429 rejection")
	}
}
