package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"cliz"
)

// codecErrorStatus maps a codec failure to its HTTP class: cancellations
// and deadlines are the client's doing, everything else from the codec is
// an unprocessable payload (the request parsed fine; the data or blob did
// not survive the codec's own validation), never a 500.
func codecErrorStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return statusFromErr(err)
	}
	return http.StatusUnprocessableEntity
}

// tuneMode labels how a pipeline request was answered: "cache" for an LRU
// hit, otherwise the TuneReport's mode ("estimate" when the fast estimator
// answered, "search" when the full AutoTune ran). The cache acts as the
// estimate pre-filter: a hit skips even the estimator's probes.
func tuneMode(hit bool, rep *cliz.TuneReport) string {
	if hit {
		return "cache"
	}
	if rep != nil && rep.Mode != "" {
		return rep.Mode
	}
	return "search"
}

// tunedPipeline resolves the pipeline for a request: nil (codec default)
// unless tune=1, in which case the LRU cache answers — running AutoTune (or,
// with estimate=1, the fast estimator) at most once per dataset family — and
// reports how the pipeline was decided ("cache", "estimate" or "search").
func (s *Server) tunedPipeline(ctx context.Context, meta FieldMeta, data []float32) (*cliz.Pipeline, string, error) {
	if !meta.Tune {
		return nil, "", nil
	}
	key := Signature(meta, data)
	res, hit, err := s.cache.Get(ctx, key, func() (cliz.Pipeline, *cliz.TuneReport, error) {
		return cliz.AutoTune(dataset(meta, data), meta.Bound,
			&cliz.TuneOptions{Context: ctx, EstimateFirst: meta.Estimate})
	})
	if err != nil {
		return nil, "", err
	}
	mode := tuneMode(hit, &res.report)
	s.metrics.tuneDecided(mode)
	pipe := res.pipe
	return &pipe, mode, nil
}

// dataset assembles the cliz.Dataset a request describes.
func dataset(meta FieldMeta, data []float32) *cliz.Dataset {
	return &cliz.Dataset{
		Name:     "request",
		Data:     data,
		Dims:     meta.Dims,
		Lead:     meta.Lead,
		Periodic: meta.Periodic,
	}
}

// handleCompress implements POST /v1/compress: raw little-endian float32
// body in, self-contained CliZ blob out. tune=1 routes through the
// pipeline cache; chunks=N emits a parallel chunked container.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	meta, err := ParseFieldQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := ReadFloatBody(r, meta.Volume, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pipe, mode, err := s.tunedPipeline(r.Context(), meta, data)
	if err != nil {
		writeError(w, codecErrorStatus(err), err)
		return
	}
	var t cliz.Trace
	opts := []cliz.Option{
		cliz.WithContext(r.Context()),
		cliz.WithTrace(&t),
		cliz.WithEntropy(meta.Entropy),
		cliz.WithWorkers(meta.Workers),
	}
	ds := dataset(meta, data)
	var blob []byte
	var info *cliz.CompressInfo
	if meta.Chunks > 1 {
		blob, info, err = cliz.CompressChunked(ds, meta.Bound, pipe, meta.Chunks, meta.Workers, opts...)
	} else {
		blob, info, err = cliz.Compress(ds, meta.Bound, pipe, opts...)
	}
	s.metrics.drainTrace("compress", &t)
	if err != nil {
		writeError(w, codecErrorStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Header().Set("X-Cliz-Ratio", fmt.Sprintf("%.3f", info.Ratio))
	w.Header().Set("X-Cliz-Bit-Rate", fmt.Sprintf("%.4f", info.BitRate))
	w.Header().Set("X-Cliz-Pipeline", info.Pipeline)
	w.Header().Set("X-Cliz-Cache", cacheLabel(meta.Tune, mode == "cache"))
	if mode != "" {
		w.Header().Set("X-Cliz-Tune-Mode", mode)
	}
	_, _ = w.Write(blob)
}

func cacheLabel(tuned, hit bool) string {
	switch {
	case !tuned:
		return "off"
	case hit:
		return "hit"
	default:
		return "miss"
	}
}

// handleDecompress implements POST /v1/decompress: blob in, raw
// little-endian float32 body out, dims in the X-Cliz-Dims header. The
// decoder's own resource caps bound the volume a hostile blob can declare;
// the service only has to bound the blob itself.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	blob, err := ReadBlobBody(r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	workers, err := parseCount(r.URL.Query().Get("workers"), 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("workers: %w", err))
		return
	}
	var t cliz.Trace
	data, dims, err := cliz.Decompress(blob,
		cliz.WithContext(r.Context()), cliz.WithTrace(&t), cliz.WithWorkers(workers))
	s.metrics.drainTrace("decompress", &t)
	if err != nil {
		writeError(w, codecErrorStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)*4))
	w.Header().Set("X-Cliz-Dims", dimsString(dims))
	_, _ = w.Write(AppendFloatsLE(make([]byte, 0, len(data)*4), data))
}

// verifyResponse is the JSON envelope of /v1/verify.
type verifyResponse struct {
	OK      bool               `json:"ok"`
	Damaged []string           `json:"damaged,omitempty"`
	Report  *cliz.VerifyReport `json:"report"`
}

// handleVerify implements POST /v1/verify: blob in, integrity report out.
// Verification never decodes payloads, so it is cheap enough to run on
// every archived blob.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	blob, err := ReadBlobBody(r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep := cliz.Verify(blob)
	writeJSON(w, verifyResponse{OK: rep.OK(), Damaged: rep.Damaged(), Report: rep})
}

// tuneResponse is the JSON envelope of /v1/tune.
type tuneResponse struct {
	Pipeline        string  `json:"pipeline"`
	Cache           string  `json:"cache"`
	Mode            string  `json:"mode"`
	Period          int     `json:"period"`
	PipelinesTested int     `json:"pipelinesTested"`
	EstimatedRatio  float64 `json:"estimatedRatio"`
	Confidence      float64 `json:"confidence,omitempty"`
}

// handleTune implements POST /v1/tune: raw floats in, the tuned pipeline
// (and its cache disposition) out. Concurrent tunes of the same family
// collapse to one AutoTune via the cache's singleflight. With estimate=1 the
// fast estimator answers when confident (mode "estimate" in the body and the
// X-Cliz-Tune-Mode header), skipping the full candidate search; low
// confidence falls back to the search transparently (mode "search").
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	meta, err := ParseFieldQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := ReadFloatBody(r, meta.Volume, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	meta.Tune = true
	key := Signature(meta, data)
	res, hit, err := s.cache.Get(r.Context(), key, func() (cliz.Pipeline, *cliz.TuneReport, error) {
		return cliz.AutoTune(dataset(meta, data), meta.Bound,
			&cliz.TuneOptions{Context: r.Context(), EstimateFirst: meta.Estimate})
	})
	if err != nil {
		writeError(w, codecErrorStatus(err), err)
		return
	}
	mode := tuneMode(hit, &res.report)
	s.metrics.tuneDecided(mode)
	w.Header().Set("X-Cliz-Tune-Mode", mode)
	writeJSON(w, tuneResponse{
		Pipeline:        res.pipe.String(),
		Cache:           cacheLabel(true, hit),
		Mode:            mode,
		Period:          res.report.Period,
		PipelinesTested: res.report.PipelinesTested,
		EstimatedRatio:  res.report.EstimatedRatio,
		Confidence:      res.report.Confidence,
	})
}
