package service

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"cliz"
	"cliz/internal/trace"
)

// The metrics registry keeps everything a long-lived daemon needs to stay
// observable without unbounded growth: fixed-bucket latency histograms and
// counters per endpoint, plus one trace.Aggregator per endpoint folding the
// codec's per-stage records into O(distinct stages) memory forever. The
// exposition is the Prometheus text format, hand-rendered — the repo is
// stdlib-only by design.

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30}

// endpointStats is one endpoint's mutable counters (guarded by registry.mu).
type endpointStats struct {
	byCode   map[int]int64
	buckets  []int64 // len(latencyBuckets)+1, last = +Inf
	sumSec   float64
	count    int64
	rejected int64
	bytesIn  int64
	bytesOut int64
	stages   trace.Aggregator
}

type registry struct {
	mu        sync.Mutex
	start     time.Time
	byEP      map[string]*endpointStats
	tuneModes map[string]int64 // pipeline decisions by mode: cache / estimate / search
}

func newRegistry() *registry {
	return &registry{
		start:     time.Now(),
		byEP:      make(map[string]*endpointStats),
		tuneModes: make(map[string]int64),
	}
}

func (r *registry) endpoint(name string) *endpointStats {
	ep, ok := r.byEP[name]
	if !ok {
		ep = &endpointStats{byCode: make(map[int]int64), buckets: make([]int64, len(latencyBuckets)+1)}
		r.byEP[name] = ep
	}
	return ep
}

// observe records one finished request.
func (r *registry) observe(endpoint string, code int, d time.Duration, in, out int64) {
	sec := d.Seconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.endpoint(endpoint)
	ep.byCode[code]++
	ep.count++
	ep.sumSec += sec
	i := sort.SearchFloat64s(latencyBuckets, sec)
	ep.buckets[i]++
	if in > 0 {
		ep.bytesIn += in
	}
	if out > 0 {
		ep.bytesOut += out
	}
}

// tuneDecided counts one resolved pipeline decision by how it was answered:
// "cache" (LRU hit), "estimate" (fast estimator was confident) or "search"
// (full AutoTune ran). Together the three expose how often the estimator
// actually saves a search.
func (r *registry) tuneDecided(mode string) {
	r.mu.Lock()
	r.tuneModes[mode]++
	r.mu.Unlock()
}

// rejected counts one admission-control 429.
func (r *registry) rejected(endpoint string) {
	r.mu.Lock()
	r.endpoint(endpoint).rejected++
	r.mu.Unlock()
}

// stageCollector returns the Aggregator receiving endpoint's codec stages.
func (r *registry) stageCollector(endpoint string) *trace.Aggregator {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &r.endpoint(endpoint).stages
}

// drainTrace folds one request's trace into the endpoint's aggregator.
// The per-request cliz.Trace dies with the request; only the merged
// per-stage totals survive, which is what keeps a month-long daemon's
// metrics memory flat.
func (r *registry) drainTrace(endpoint string, t *cliz.Trace) {
	agg := r.stageCollector(endpoint)
	//clizlint:ignore ctxpoll folds the bounded per-request stage list, not request data
	for _, st := range t.Aggregate() {
		agg.Record(trace.Stage{
			Name:     st.Name,
			Duration: st.Duration,
			InBytes:  st.InBytes,
			OutBytes: st.OutBytes,
			Items:    st.Items,
		})
	}
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r := s.metrics
	hits, misses, size := s.cache.Stats()

	r.mu.Lock()
	names := make([]string, 0, len(r.byEP))
	for name := range r.byEP {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP cliz_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE cliz_uptime_seconds gauge\n")
	fmt.Fprintf(w, "cliz_uptime_seconds %.3f\n", time.Since(r.start).Seconds())

	fmt.Fprintf(w, "# HELP cliz_requests_total Finished requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE cliz_requests_total counter\n")
	//clizlint:ignore ctxpoll iterates the bounded endpoint registry, not request data
	for _, name := range names {
		ep := r.byEP[name]
		codes := make([]int, 0, len(ep.byCode))
		for c := range ep.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "cliz_requests_total{endpoint=%q,code=%q} %d\n", name, strconv.Itoa(c), ep.byCode[c])
		}
	}

	fmt.Fprintf(w, "# HELP cliz_rejected_total Requests refused by admission control (429).\n")
	fmt.Fprintf(w, "# TYPE cliz_rejected_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "cliz_rejected_total{endpoint=%q} %d\n", name, r.byEP[name].rejected)
	}

	fmt.Fprintf(w, "# HELP cliz_request_seconds Request latency histogram.\n")
	fmt.Fprintf(w, "# TYPE cliz_request_seconds histogram\n")
	//clizlint:ignore ctxpoll iterates the bounded endpoint registry and fixed bucket table
	for _, name := range names {
		ep := r.byEP[name]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += ep.buckets[i]
			fmt.Fprintf(w, "cliz_request_seconds_bucket{endpoint=%q,le=%q} %d\n", name, trimFloat(ub), cum)
		}
		cum += ep.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "cliz_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "cliz_request_seconds_sum{endpoint=%q} %.6f\n", name, ep.sumSec)
		fmt.Fprintf(w, "cliz_request_seconds_count{endpoint=%q} %d\n", name, ep.count)
	}

	fmt.Fprintf(w, "# HELP cliz_body_bytes_total Request and response payload bytes.\n")
	fmt.Fprintf(w, "# TYPE cliz_body_bytes_total counter\n")
	for _, name := range names {
		ep := r.byEP[name]
		fmt.Fprintf(w, "cliz_body_bytes_total{endpoint=%q,direction=\"in\"} %d\n", name, ep.bytesIn)
		fmt.Fprintf(w, "cliz_body_bytes_total{endpoint=%q,direction=\"out\"} %d\n", name, ep.bytesOut)
	}

	fmt.Fprintf(w, "# HELP cliz_stage_seconds_total Codec wall time by pipeline stage.\n")
	fmt.Fprintf(w, "# TYPE cliz_stage_seconds_total counter\n")
	type stageRow struct {
		ep string
		st trace.Stage
	}
	var rows []stageRow
	//clizlint:ignore ctxpoll iterates the bounded endpoint registry and stage-name set
	for _, name := range names {
		for _, st := range r.byEP[name].stages.Snapshot() {
			rows = append(rows, stageRow{ep: name, st: st})
		}
	}
	modes := make([]string, 0, len(r.tuneModes))
	for m := range r.tuneModes {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	modeCounts := make([]int64, len(modes))
	for i, m := range modes {
		modeCounts[i] = r.tuneModes[m]
	}
	r.mu.Unlock()
	for _, row := range rows {
		fmt.Fprintf(w, "cliz_stage_seconds_total{endpoint=%q,stage=%q} %.6f\n",
			row.ep, row.st.Name, row.st.Duration.Seconds())
	}
	fmt.Fprintf(w, "# HELP cliz_stage_records_total Codec stage records folded in.\n")
	fmt.Fprintf(w, "# TYPE cliz_stage_records_total counter\n")
	//clizlint:ignore ctxpoll iterates the bounded endpoint×stage row set, not request data
	for _, row := range rows {
		var records float64
		for _, kv := range row.st.Extra {
			if kv.Key == "records" {
				records = kv.Value
			}
		}
		fmt.Fprintf(w, "cliz_stage_records_total{endpoint=%q,stage=%q} %.0f\n",
			row.ep, row.st.Name, records)
	}

	fmt.Fprintf(w, "# HELP cliz_tune_estimate_total Pipeline decisions by mode: cache hit, fast estimate, or full search.\n")
	fmt.Fprintf(w, "# TYPE cliz_tune_estimate_total counter\n")
	for i, m := range modes {
		fmt.Fprintf(w, "cliz_tune_estimate_total{mode=%q} %d\n", m, modeCounts[i])
	}

	fmt.Fprintf(w, "# HELP cliz_tune_cache_hits_total Tuned-pipeline cache hits (AutoTune skipped).\n")
	fmt.Fprintf(w, "# TYPE cliz_tune_cache_hits_total counter\n")
	fmt.Fprintf(w, "cliz_tune_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP cliz_tune_cache_misses_total Tuned-pipeline cache misses (AutoTune ran).\n")
	fmt.Fprintf(w, "# TYPE cliz_tune_cache_misses_total counter\n")
	fmt.Fprintf(w, "cliz_tune_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP cliz_tune_cache_entries Tuned-pipeline cache current size.\n")
	fmt.Fprintf(w, "# TYPE cliz_tune_cache_entries gauge\n")
	fmt.Fprintf(w, "cliz_tune_cache_entries %d\n", size)

	fmt.Fprintf(w, "# HELP cliz_queue_depth Admitted requests (running + waiting).\n")
	fmt.Fprintf(w, "# TYPE cliz_queue_depth gauge\n")
	fmt.Fprintf(w, "cliz_queue_depth %d\n", s.QueueDepth())
}

// trimFloat renders a bucket bound the Prometheus way ("0.005", "1").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
