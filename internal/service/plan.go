package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cliz"
	"cliz/internal/netsim"
)

// /v1/plan is the service's answer to the paper's scaled-performance
// question (§VII-C4, Fig. 13): given a representative per-core file and a
// WAN description, which error bound minimizes end-to-end transfer time?
// The handler compresses the posted sample once per candidate bound,
// measures actual compressed sizes and wall times, feeds them through
// netsim.Plan, and always includes the uncompressed baseline so "don't
// compress" is a possible (and checkable) answer.

// maxPlanCandidates bounds the per-request compression work.
const maxPlanCandidates = 8

// PlanQuery is the parsed /v1/plan request.
type PlanQuery struct {
	Meta   FieldMeta
	WAN    netsim.WAN
	Cores  int
	Bounds []float64 // candidate relative bounds, tightest first
}

// ParsePlanQuery parses the plan parameters: the shared field metadata
// (the bound parameter doubles as the default candidate list), the WAN
// constants, and the core count.
func ParsePlanQuery(r *http.Request) (PlanQuery, error) {
	var p PlanQuery
	q := r.URL.Query()
	var err error
	if p.Meta.Dims, p.Meta.Volume, err = ParseDims(q.Get("dims")); err != nil {
		return p, err
	}
	bounds := q.Get("bounds")
	if bounds == "" {
		bounds = "1e-4,1e-3,1e-2"
	}
	for _, part := range strings.Split(bounds, ",") {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 || v >= 1 {
			return p, fmt.Errorf("bounds=%q: bad relative bound %q (want 0 < rel < 1): %w", bounds, part, ErrBadRequest)
		}
		p.Bounds = append(p.Bounds, v)
	}
	if len(p.Bounds) > maxPlanCandidates {
		return p, fmt.Errorf("bounds=%q: at most %d candidates: %w", bounds, maxPlanCandidates, ErrBadRequest)
	}
	p.WAN = netsim.DefaultWAN()
	if bw := q.Get("bandwidth"); bw != "" {
		v, err := strconv.ParseFloat(bw, 64)
		if err != nil {
			return p, fmt.Errorf("bandwidth=%q: %w", bw, err)
		}
		p.WAN.BandwidthBytesPerSec = v
	}
	if st := q.Get("streams"); st != "" {
		n, err := strconv.Atoi(st)
		if err != nil {
			return p, fmt.Errorf("streams=%q: %w", st, err)
		}
		p.WAN.ParallelStreams = n
	}
	if err := p.WAN.Validate(); err != nil {
		return p, err
	}
	if p.Cores, err = parseCount(q.Get("cores"), 1<<20); err != nil {
		return p, fmt.Errorf("cores: %w", err)
	}
	if p.Cores == 0 {
		p.Cores = 1
	}
	return p, nil
}

// planCandidate is one row of the plan response.
type planCandidate struct {
	Label       string  `json:"label"`
	FileBytes   int     `json:"fileBytes"`
	Ratio       float64 `json:"ratio"`
	CompressSec float64 `json:"compressSec"`
	TransferSec float64 `json:"transferSec"`
	TotalSec    float64 `json:"totalSec"`
}

// planResponse is the JSON envelope of /v1/plan.
type planResponse struct {
	Best       string          `json:"best"`
	Cores      int             `json:"cores"`
	Candidates []planCandidate `json:"candidates"`
}

// handlePlan implements POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	pq, err := ParsePlanQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := ReadFloatBody(r, pq.Meta.Volume, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds := dataset(pq.Meta, data)
	var t cliz.Trace
	cands := make([]netsim.Candidate, 0, len(pq.Bounds)+1)
	for _, rel := range pq.Bounds {
		start := time.Now()
		blob, _, err := cliz.Compress(ds, cliz.Rel(rel), nil,
			cliz.WithContext(r.Context()), cliz.WithTrace(&t))
		if err != nil {
			s.metrics.drainTrace("plan", &t)
			writeError(w, codecErrorStatus(err), fmt.Errorf("rel=%g: %w", rel, err))
			return
		}
		cands = append(cands, netsim.Candidate{
			Label:       fmt.Sprintf("rel=%g", rel),
			FileBytes:   len(blob),
			CompressSec: time.Since(start).Seconds(),
		})
	}
	s.metrics.drainTrace("plan", &t)
	cands = append(cands, netsim.Candidate{Label: "uncompressed", FileBytes: pq.Meta.Volume * 4})
	best, results, err := netsim.Plan(pq.WAN, pq.Cores, cands)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := planResponse{Best: cands[best].Label, Cores: pq.Cores}
	rawBytes := float64(pq.Meta.Volume * 4)
	for i, c := range cands {
		resp.Candidates = append(resp.Candidates, planCandidate{
			Label:       c.Label,
			FileBytes:   c.FileBytes,
			Ratio:       rawBytes / float64(c.FileBytes),
			CompressSec: results[i].CompressTime.Seconds(),
			TransferSec: results[i].TransferTime.Seconds(),
			TotalSec:    results[i].Total.Seconds(),
		})
	}
	writeJSON(w, resp)
}
