package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"cliz"
)

// ErrBadRequest is the sentinel every request-parse failure wraps — the
// service's analogue of the codec's corrupt-input errors. errors.Is on it
// separates "the request was malformed" (400) from "the payload did not
// survive the codec" (422).
var ErrBadRequest = errors.New("service: bad request")

// Request wire protocol: field metadata travels in query parameters so the
// body stays a pure byte stream (raw little-endian float32 data for
// compress/tune/plan, a CliZ blob for decompress/verify). That keeps the
// handlers streaming-friendly and lets every size check happen against the
// declared dims and Content-Length before a single volume-proportional
// byte is allocated.

// maxServiceDims bounds the declared rank; the codec itself tops out at 8.
const maxServiceDims = 8

// maxServiceVolume bounds the declared point count (8 Gi points = 32 GiB of
// float32), mirroring the decoder's own volume budget. The effective cap is
// min(this, MaxBodyBytes/4); this constant only stops overflow games before
// the multiplication happens.
const maxServiceVolume = 1 << 33

// FieldMeta is the parsed description of the field a request operates on.
type FieldMeta struct {
	Dims     []int
	Bound    cliz.ErrorBound
	Lead     cliz.LeadKind
	Periodic bool
	Entropy  cliz.EntropyKind
	Workers  int
	Chunks   int
	Tune     bool
	// Estimate enables estimate-first tuning: the fast estimator answers
	// when confident, the full AutoTune search only on low confidence.
	Estimate bool
	Volume   int
}

// ParseDims parses a dimension list like "26x180x360" (or comma-separated)
// and validates rank and volume before anything is sized from it.
func ParseDims(s string) ([]int, int, error) {
	if s == "" {
		return nil, 0, fmt.Errorf("missing dims parameter (e.g. dims=26x180x360): %w", ErrBadRequest)
	}
	parts := strings.Split(strings.ReplaceAll(s, ",", "x"), "x")
	if len(parts) > maxServiceDims {
		return nil, 0, fmt.Errorf("dims %q: need 1..%d extents: %w", s, maxServiceDims, ErrBadRequest)
	}
	dims := make([]int, len(parts))
	vol := 1
	for i, p := range parts {
		d, err := strconv.Atoi(p)
		if err != nil || d < 1 {
			return nil, 0, fmt.Errorf("dims %q: bad extent %q: %w", s, p, ErrBadRequest)
		}
		if d > maxServiceVolume/vol {
			return nil, 0, fmt.Errorf("dims %q: volume exceeds %d points: %w", s, maxServiceVolume, ErrBadRequest)
		}
		dims[i] = d
		vol *= d
	}
	return dims, vol, nil
}

// ParseBound parses the rel= / abs= pair into an ErrorBound, requiring
// exactly one finite positive value.
func ParseBound(rel, abs string) (cliz.ErrorBound, error) {
	parse := func(s, name string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, fmt.Errorf("%s=%q: need a finite positive value: %w", name, s, ErrBadRequest)
		}
		return v, nil
	}
	switch {
	case rel != "" && abs != "":
		return cliz.ErrorBound{}, fmt.Errorf("pass exactly one of rel= and abs=: %w", ErrBadRequest)
	case rel != "":
		v, err := parse(rel, "rel")
		if err != nil {
			return cliz.ErrorBound{}, err
		}
		return cliz.Rel(v), nil
	case abs != "":
		v, err := parse(abs, "abs")
		if err != nil {
			return cliz.ErrorBound{}, err
		}
		return cliz.Abs(v), nil
	}
	return cliz.ErrorBound{}, fmt.Errorf("missing error bound: pass rel= or abs=: %w", ErrBadRequest)
}

// ParseFieldQuery parses the shared metadata parameters of the float-body
// endpoints (compress, tune, plan).
func ParseFieldQuery(r *http.Request) (FieldMeta, error) {
	q := r.URL.Query()
	var m FieldMeta
	var err error
	if m.Dims, m.Volume, err = ParseDims(q.Get("dims")); err != nil {
		return m, err
	}
	if m.Bound, err = ParseBound(q.Get("rel"), q.Get("abs")); err != nil {
		return m, err
	}
	switch lead := q.Get("lead"); lead {
	case "", "none":
		m.Lead = cliz.LeadNone
	case "time":
		m.Lead = cliz.LeadTime
	case "height":
		m.Lead = cliz.LeadHeight
	default:
		return m, fmt.Errorf("lead=%q: want time, height or none: %w", lead, ErrBadRequest)
	}
	switch p := q.Get("periodic"); p {
	case "", "0", "false":
	case "1", "true":
		m.Periodic = true
	default:
		return m, fmt.Errorf("periodic=%q: want 0 or 1: %w", p, ErrBadRequest)
	}
	switch e := q.Get("entropy"); e {
	case "", "huffman":
		m.Entropy = cliz.EntropyHuffman
	case "rans":
		m.Entropy = cliz.EntropyRANS
	case "ransi", "rans-interleaved":
		m.Entropy = cliz.EntropyRANSInterleaved
	default:
		return m, fmt.Errorf("entropy=%q: want huffman, rans or ransi: %w", e, ErrBadRequest)
	}
	if m.Workers, err = parseCount(q.Get("workers"), 64); err != nil {
		return m, fmt.Errorf("workers: %w", err)
	}
	if m.Chunks, err = parseCount(q.Get("chunks"), 1<<16); err != nil {
		return m, fmt.Errorf("chunks: %w", err)
	}
	switch t := q.Get("tune"); t {
	case "", "0", "false":
	case "1", "true":
		m.Tune = true
	default:
		return m, fmt.Errorf("tune=%q: want 0 or 1: %w", t, ErrBadRequest)
	}
	switch e := q.Get("estimate"); e {
	case "", "0", "false":
	case "1", "true":
		m.Estimate = true
	default:
		return m, fmt.Errorf("estimate=%q: want 0 or 1: %w", e, ErrBadRequest)
	}
	return m, nil
}

func parseCount(s string, max int) (int, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > max {
		return 0, fmt.Errorf("%q: want 0..%d: %w", s, max, ErrBadRequest)
	}
	return n, nil
}

// ReadFloatBody reads exactly the declared volume of little-endian float32
// data from the request body. The 4×volume commitment is checked against
// maxBody and the declared Content-Length before the buffer exists, so a
// hostile dims parameter cannot size an allocation past the budget, and a
// short or oversized body is a clean 400-class error, not a hang or an
// overrun.
func ReadFloatBody(r *http.Request, vol int, maxBody int64) ([]float32, error) {
	want := int64(vol) * 4
	if want > maxBody {
		return nil, fmt.Errorf("declared volume needs %d body bytes, over the %d budget: %w", want, maxBody, ErrBadRequest)
	}
	if r.ContentLength >= 0 && r.ContentLength != want {
		return nil, fmt.Errorf("Content-Length %d != 4×volume = %d: %w", r.ContentLength, want, ErrBadRequest)
	}
	raw := make([]byte, want)
	if _, err := io.ReadFull(r.Body, raw); err != nil {
		return nil, fmt.Errorf("short body: want %d bytes: %w", want, err)
	}
	var probe [1]byte
	if n, _ := r.Body.Read(probe[:]); n != 0 {
		return nil, fmt.Errorf("body longer than 4×volume = %d bytes: %w", want, ErrBadRequest)
	}
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return data, nil
}

// ReadBlobBody reads a CliZ blob request body of unknown length, failing
// once it exceeds maxBody. Growth is append-based and proportional to the
// bytes actually received, never to a declared size.
func ReadBlobBody(r *http.Request, maxBody int64) ([]byte, error) {
	if r.ContentLength > maxBody {
		return nil, fmt.Errorf("Content-Length %d over the %d budget: %w", r.ContentLength, maxBody, ErrBadRequest)
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	if int64(len(blob)) > maxBody {
		return nil, fmt.Errorf("body over the %d-byte budget: %w", maxBody, ErrBadRequest)
	}
	if len(blob) == 0 {
		return nil, fmt.Errorf("empty body: %w", ErrBadRequest)
	}
	return blob, nil
}

// AppendFloatsLE encodes data as little-endian float32 bytes, the inverse
// of ReadFloatBody's layout.
func AppendFloatsLE(dst []byte, data []float32) []byte {
	var b [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// dimsString renders dims in the wire format ("26x180x360").
func dimsString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, "x")
}
