package service

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseDims(t *testing.T) {
	cases := []struct {
		in   string
		dims []int
		vol  int
		ok   bool
	}{
		{"26x180x360", []int{26, 180, 360}, 26 * 180 * 360, true},
		{"26,180,360", []int{26, 180, 360}, 26 * 180 * 360, true},
		{"7", []int{7}, 7, true},
		{"", nil, 0, false},
		{"0x4", nil, 0, false},
		{"-1x4", nil, 0, false},
		{"4x", nil, 0, false},
		{"axb", nil, 0, false},
		{"1x2x3x4x5x6x7x8x9", nil, 0, false},                // rank > 8
		{"999999999x999999999x999999999", nil, 0, false},    // volume overflow
		{"2147483647x2147483647x2147483647", nil, 0, false}, // int overflow bait
	}
	for _, tc := range cases {
		dims, vol, err := ParseDims(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("%q: err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if vol != tc.vol || len(dims) != len(tc.dims) {
			t.Errorf("%q: dims=%v vol=%d", tc.in, dims, vol)
		}
	}
}

func TestParseBound(t *testing.T) {
	if _, err := ParseBound("", ""); err == nil {
		t.Error("missing bound accepted")
	}
	if _, err := ParseBound("1e-3", "0.5"); err == nil {
		t.Error("double bound accepted")
	}
	for _, bad := range []string{"0", "-1", "NaN", "+Inf", "x"} {
		if _, err := ParseBound(bad, ""); err == nil {
			t.Errorf("rel=%q accepted", bad)
		}
		if _, err := ParseBound("", bad); err == nil {
			t.Errorf("abs=%q accepted", bad)
		}
	}
	b, err := ParseBound("1e-3", "")
	if err != nil || b.Rel != 1e-3 || b.Abs != 0 {
		t.Errorf("rel parse: %+v err=%v", b, err)
	}
	b, err = ParseBound("", "0.25")
	if err != nil || b.Abs != 0.25 || b.Rel != 0 {
		t.Errorf("abs parse: %+v err=%v", b, err)
	}
}

// TestReadFloatBodyCaps proves the allocation gate: a declared volume
// whose byte size exceeds the budget fails before any volume-sized buffer
// exists, and Content-Length lies are rejected up front.
func TestReadFloatBodyCaps(t *testing.T) {
	// Volume over budget.
	r := httptest.NewRequest("POST", "/", bytes.NewReader(make([]byte, 64)))
	if _, err := ReadFloatBody(r, 1<<20, 1024); err == nil {
		t.Error("over-budget volume accepted")
	}
	// Content-Length mismatch.
	r = httptest.NewRequest("POST", "/", bytes.NewReader(make([]byte, 64)))
	r.ContentLength = 64
	if _, err := ReadFloatBody(r, 4, 1024); err == nil {
		t.Error("Content-Length 64 accepted for volume 4")
	}
	// Short body.
	r = httptest.NewRequest("POST", "/", bytes.NewReader(make([]byte, 8)))
	r.ContentLength = -1
	if _, err := ReadFloatBody(r, 4, 1024); err == nil {
		t.Error("short body accepted")
	}
	// Long body.
	r = httptest.NewRequest("POST", "/", bytes.NewReader(make([]byte, 64)))
	r.ContentLength = -1
	if _, err := ReadFloatBody(r, 4, 1024); err == nil {
		t.Error("oversized body accepted")
	}
	// Exact body round-trips bit-for-bit, NaN payloads included.
	want := []float32{1.5, -0.25, float32(math.NaN()), 0}
	r = httptest.NewRequest("POST", "/", bytes.NewReader(AppendFloatsLE(nil, want)))
	got, err := ReadFloatBody(r, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Errorf("point %d: %x != %x", i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

func TestReadBlobBodyCaps(t *testing.T) {
	r := httptest.NewRequest("POST", "/", strings.NewReader("0123456789"))
	r.ContentLength = 10
	if _, err := ReadBlobBody(r, 4); err == nil {
		t.Error("declared over-budget blob accepted")
	}
	r = httptest.NewRequest("POST", "/", strings.NewReader("0123456789"))
	r.ContentLength = -1 // undeclared: the streaming cap must still hold
	if _, err := ReadBlobBody(r, 4); err == nil {
		t.Error("streamed over-budget blob accepted")
	}
	r = httptest.NewRequest("POST", "/", strings.NewReader(""))
	if _, err := ReadBlobBody(r, 4); err == nil {
		t.Error("empty blob accepted")
	}
	r = httptest.NewRequest("POST", "/", strings.NewReader("ok"))
	blob, err := ReadBlobBody(r, 4)
	if err != nil || string(blob) != "ok" {
		t.Errorf("blob=%q err=%v", blob, err)
	}
}

func TestConfigNormalize(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Workers < 1 || c.Queue != 2*c.Workers || c.MaxBodyBytes != 1<<30 ||
		c.CacheSize != 64 || c.RequestTimeout == 0 {
		t.Fatalf("defaults: %+v", c)
	}
	bad := Config{Workers: -1}
	if err := bad.Normalize(); err == nil {
		t.Error("negative workers accepted")
	}
}
