// Package service implements clizd, the concurrent compression daemon over
// the CliZ v3 container. It exposes the library's compress / decompress /
// verify / tune entry points plus a netsim-backed transfer planner as a
// small HTTP API, and exists to make the library's concurrency story load
// bearing: every request runs the same goroutine-safe pipeline the CLI
// uses, under a bounded worker pool with explicit admission control,
// per-request deadlines threaded into the codec via cliz.WithContext, and
// an LRU cache so AutoTune's offline cost is paid once per dataset family.
//
// The handlers are decode entry points in the clizlint sense: request
// bodies are hostile input, so every resource commitment (float buffers,
// blob buffers) is capped against the configured budget *before* the
// allocation happens, and no panic is reachable from the parsing paths.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"
)

// Config sizes the daemon. The zero value is usable: Normalize fills every
// field with a production-shaped default.
type Config struct {
	// Workers bounds the number of requests doing codec work at once.
	// 0 selects GOMAXPROCS.
	Workers int
	// Queue bounds how many admitted requests may wait for a worker slot
	// beyond the Workers already running; past that the server answers
	// 429 with Retry-After instead of buffering unbounded work.
	// 0 selects 2×Workers.
	Queue int
	// MaxBodyBytes caps any request body (raw floats or blob) before
	// allocation. 0 selects 1 GiB.
	MaxBodyBytes int64
	// CacheSize bounds the tuned-pipeline LRU (entries). 0 selects 64.
	CacheSize int
	// RequestTimeout is the per-request codec deadline. 0 selects 2m.
	RequestTimeout time.Duration
}

// Normalize fills zero fields with defaults and rejects negatives.
func (c *Config) Normalize() error {
	if c.Workers < 0 || c.Queue < 0 || c.MaxBodyBytes < 0 || c.CacheSize < 0 || c.RequestTimeout < 0 {
		return fmt.Errorf("service: negative config %+v", *c)
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 2 * c.Workers
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	return nil
}

// Server is the clizd request handler: a worker pool, a tuned-pipeline
// cache and a metrics registry behind an http.Handler.
type Server struct {
	cfg     Config
	slots   chan struct{}
	mu      sync.Mutex // guards queued
	queued  int        // requests admitted: running + waiting
	cache   *pipelineCache
	metrics *registry
	mux     *http.ServeMux
}

// NewServer builds a Server from cfg (normalized in place).
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.Workers),
		cache:   newPipelineCache(cfg.CacheSize),
		metrics: newRegistry(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compress", s.heavy("compress", s.handleCompress))
	s.mux.HandleFunc("POST /v1/decompress", s.heavy("decompress", s.handleDecompress))
	s.mux.HandleFunc("POST /v1/verify", s.heavy("verify", s.handleVerify))
	s.mux.HandleFunc("POST /v1/tune", s.heavy("tune", s.handleTune))
	s.mux.HandleFunc("POST /v1/plan", s.heavy("plan", s.handlePlan))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errBusy is returned by acquire when the queue is full.
var errBusy = errors.New("service: worker queue full")

// acquire admits the request into the worker pool: it either claims a slot
// (possibly after waiting in the bounded queue) or fails fast with errBusy
// when the queue is already full, or with ctx.Err() when the caller gave up
// while waiting. The returned release must be called exactly once.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	s.mu.Lock()
	if s.queued >= s.cfg.Workers+s.cfg.Queue {
		s.mu.Unlock()
		return nil, errBusy
	}
	s.queued++
	s.mu.Unlock()
	undo := func() {
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
	}
	select {
	case s.slots <- struct{}{}:
		return func() {
			<-s.slots
			undo()
		}, nil
	case <-ctx.Done():
		undo()
		return nil, ctx.Err()
	}
}

// QueueDepth reports the number of admitted requests (running + waiting).
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// heavy wraps a codec endpoint with admission control, the per-request
// deadline, and metrics accounting. Rejections are observable: a full
// queue answers 429 with a Retry-After hint and bumps the rejected
// counter, so saturation shows up in both the client and /metrics.
func (s *Server) heavy(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		release, err := s.acquire(r.Context())
		if err != nil {
			// Record the status actually written: a caller that gave up
			// while queued is a 499/504, not a 429 — conflating them hid
			// client-side cancellations inside the saturation signal.
			status := statusFromErr(err)
			if errors.Is(err, errBusy) {
				status = http.StatusTooManyRequests
				s.metrics.rejected(endpoint)
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RequestTimeout)))
			}
			writeError(w, status, err)
			s.metrics.observe(endpoint, status, time.Since(start), 0, 0)
			return
		}
		defer release()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.metrics.observe(endpoint, sw.code, time.Since(start), r.ContentLength, sw.bytes)
	}
}

// retryAfterSeconds turns the request budget into a coarse client backoff
// hint: a queue full of t-long requests drains one slot in about t.
func retryAfterSeconds(t time.Duration) int {
	secs := int(t / time.Second / 4)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// statusFromErr maps an error to the HTTP status of its class: client
// cancellations and deadline hits are not server faults.
func statusFromErr(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":     "ok",
		"workers":    s.cfg.Workers,
		"queue":      s.cfg.Queue,
		"queueDepth": s.QueueDepth(),
	})
}
