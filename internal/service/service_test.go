package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cliz"
	"cliz/internal/datagen"
)

// testServer builds a Server with small, test-friendly limits behind an
// httptest listener.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// testField is a deterministic datagen field small enough for fast tests.
func testField(t *testing.T) (*cliz.Dataset, []byte, string) {
	t.Helper()
	ids, err := datagen.ByName("SSH", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	// The service wire protocol has no mask channel, so the reference
	// dataset must match what the handler reconstructs from the request:
	// dims + lead + periodic only, name "request".
	ds := &cliz.Dataset{
		Name:     "request",
		Data:     ids.Data,
		Dims:     ids.Dims,
		Lead:     cliz.LeadKind(ids.Lead),
		Periodic: ids.Periodic,
	}
	body := AppendFloatsLE(make([]byte, 0, len(ds.Data)*4), ds.Data)
	return ds, body, dimsString(ds.Dims)
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCompressDecompressRoundTrip drives raw floats through a live server
// and back, asserting blob bit-equality with the direct library call in
// both directions — the service must be a transport, never a second codec.
func TestCompressDecompressRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	ds, body, dims := testField(t)

	resp := post(t, ts.URL+"/v1/compress?dims="+dims+"&rel=1e-3&lead=time&periodic=1", body)
	blob := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, blob)
	}
	want, info, err := cliz.Compress(ds, cliz.Rel(1e-3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("served blob (%d bytes) != direct blob (%d bytes)", len(blob), len(want))
	}
	if got := resp.Header.Get("X-Cliz-Pipeline"); got != info.Pipeline {
		t.Errorf("X-Cliz-Pipeline = %q, want %q", got, info.Pipeline)
	}
	if resp.Header.Get("X-Cliz-Cache") != "off" {
		t.Errorf("X-Cliz-Cache = %q, want off", resp.Header.Get("X-Cliz-Cache"))
	}

	resp = post(t, ts.URL+"/v1/decompress", blob)
	raw := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Cliz-Dims"); got != dims {
		t.Errorf("X-Cliz-Dims = %q, want %q", got, dims)
	}
	direct, _, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, AppendFloatsLE(nil, direct)) {
		t.Fatal("served reconstruction differs from direct decode")
	}
	// And the reconstruction honors the bound against the original.
	recon := make([]float32, len(direct))
	for i := range recon {
		recon[i] = math.Float32frombits(uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 |
			uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, v := range ds.Data {
		lo, hi = math.Min(lo, float64(v)), math.Max(hi, float64(v))
	}
	bound := 1e-3 * (hi - lo) * (1 + 1e-9)
	for i := range recon {
		if diff := math.Abs(float64(recon[i]) - float64(ds.Data[i])); diff > bound {
			t.Fatalf("point %d: |%g - %g| = %g > %g", i, recon[i], ds.Data[i], diff, bound)
		}
	}
}

// TestChunkedCompressViaService round-trips a chunked container.
func TestChunkedCompressViaService(t *testing.T) {
	_, ts := testServer(t, Config{})
	ds, body, dims := testField(t)

	resp := post(t, ts.URL+"/v1/compress?dims="+dims+"&rel=1e-3&lead=time&periodic=1&chunks=3&workers=2", body)
	blob := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d %s", resp.StatusCode, blob)
	}
	want, _, err := cliz.CompressChunked(ds, cliz.Rel(1e-3), nil, 3, 2, cliz.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatal("served chunked blob differs from direct CompressChunked")
	}
	resp = post(t, ts.URL+"/v1/decompress?workers=2", blob)
	raw := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decompress: %d %s", resp.StatusCode, raw)
	}
	if len(raw) != len(ds.Data)*4 {
		t.Fatalf("decompress returned %d bytes, want %d", len(raw), len(ds.Data)*4)
	}
}

// TestVerifyEndpoint checks both the intact and the damaged paths.
func TestVerifyEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	ds, _, _ := testField(t)
	blob, _, err := cliz.Compress(ds, cliz.Rel(1e-3), nil)
	if err != nil {
		t.Fatal(err)
	}

	resp := post(t, ts.URL+"/v1/verify", blob)
	var rep verifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rep.OK {
		t.Fatalf("intact blob: code %d ok=%v damaged=%v", resp.StatusCode, rep.OK, rep.Damaged)
	}

	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0xff
	resp = post(t, ts.URL+"/v1/verify", bad)
	rep = verifyResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.OK || len(rep.Damaged) == 0 {
		t.Fatalf("flipped byte not detected: %+v", rep)
	}
}

// TestTuneCacheHit proves the LRU path: the first tune runs AutoTune, the
// second request of the same family answers from the cache, and a tuned
// compress afterwards also hits.
func TestTuneCacheHit(t *testing.T) {
	s, ts := testServer(t, Config{})
	_, body, dims := testField(t)
	q := "?dims=" + dims + "&rel=1e-2&lead=time&periodic=1"

	var first tuneResponse
	resp := post(t, ts.URL+"/v1/tune"+q, body)
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || first.Cache != "miss" {
		t.Fatalf("first tune: code %d cache %q", resp.StatusCode, first.Cache)
	}
	if first.Pipeline == "" || first.PipelinesTested == 0 {
		t.Fatalf("empty tune report: %+v", first)
	}

	var second tuneResponse
	resp = post(t, ts.URL+"/v1/tune"+q, body)
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if second.Cache != "hit" || second.Pipeline != first.Pipeline {
		t.Fatalf("second tune: cache %q pipeline %q (want hit, %q)", second.Cache, second.Pipeline, first.Pipeline)
	}

	resp = post(t, ts.URL+"/v1/compress"+q+"&tune=1", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Cliz-Cache"); got != "hit" {
		t.Fatalf("tuned compress after tune: X-Cliz-Cache = %q, want hit", got)
	}
	hits, misses, _ := s.cache.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("cache stats: hits=%d misses=%d, want 2/1", hits, misses)
	}
}

// TestPlanEndpoint exercises /v1/plan over a live server.
func TestPlanEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	_, body, dims := testField(t)

	resp := post(t, ts.URL+"/v1/plan?dims="+dims+"&cores=256&bounds=1e-4,1e-2", body)
	out := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, out)
	}
	var plan planResponse
	if err := json.Unmarshal(out, &plan); err != nil {
		t.Fatal(err)
	}
	if len(plan.Candidates) != 3 { // two bounds + uncompressed baseline
		t.Fatalf("got %d candidates, want 3: %s", len(plan.Candidates), out)
	}
	if plan.Candidates[2].Label != "uncompressed" {
		t.Fatalf("last candidate %q, want uncompressed", plan.Candidates[2].Label)
	}
	if plan.Best == "" {
		t.Fatal("no best candidate")
	}
	for _, c := range plan.Candidates {
		if c.TotalSec <= 0 || math.IsNaN(c.TotalSec) {
			t.Fatalf("candidate %q: bad total %g", c.Label, c.TotalSec)
		}
	}
}

// TestMalformedRequests asserts every parse failure is a 400 with a JSON
// error body — hostile input must never surface as a 500 or a panic.
func TestMalformedRequests(t *testing.T) {
	_, ts := testServer(t, Config{MaxBodyBytes: 1 << 20})
	cases := []struct {
		name, path string
		body       []byte
	}{
		{"missing dims", "/v1/compress?rel=1e-3", []byte("xxxx")},
		{"bad dims", "/v1/compress?dims=0x4&rel=1e-3", []byte("xxxx")},
		{"dims overflow", "/v1/compress?dims=999999999x999999999x999999999&rel=1e-3", []byte("xxxx")},
		{"missing bound", "/v1/compress?dims=2x2", []byte("xxxx")},
		{"both bounds", "/v1/compress?dims=2x2&rel=1e-3&abs=1", []byte("xxxx")},
		{"NaN bound", "/v1/compress?dims=2x2&rel=NaN", []byte("xxxx")},
		{"bad lead", "/v1/compress?dims=2x2&rel=1e-3&lead=sideways", []byte("xxxx")},
		{"bad entropy", "/v1/compress?dims=2x2&rel=1e-3&entropy=magic", []byte("xxxx")},
		{"short body", "/v1/compress?dims=4x4&rel=1e-3", []byte("xx")},
		{"long body", "/v1/compress?dims=2x2&rel=1e-3", make([]byte, 64)},
		{"volume over budget", "/v1/compress?dims=1024x1024&rel=1e-3", []byte("xx")},
		{"empty blob", "/v1/decompress", nil},
		{"empty verify", "/v1/verify", nil},
		{"bad plan bounds", "/v1/plan?dims=2x2&bounds=2.0", []byte("xxxx")},
		{"bad plan bandwidth", "/v1/plan?dims=2x2&bandwidth=NaN", []byte("xxxx")},
	}
	for _, tc := range cases {
		resp := post(t, ts.URL+tc.path, tc.body)
		body := readAll(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		var e apiError
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: not a JSON error envelope: %s", tc.name, body)
		}
	}
}

// TestGarbageBlobIs422 separates parse-stage 400s from codec-stage 422s:
// a well-formed request whose blob is garbage is the codec's verdict.
func TestGarbageBlobIs422(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp := post(t, ts.URL+"/v1/decompress", []byte("this is not a cliz blob at all"))
	body := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("code %d, want 422 (%s)", resp.StatusCode, body)
	}
}

// TestAdmissionControl429 saturates a Workers=1/Queue=1 server with
// requests whose bodies are held open, then proves the next request is
// rejected with 429 + Retry-After while the stalled ones still finish.
func TestAdmissionControl429(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, Queue: 1, RequestTimeout: time.Minute})
	_, body, dims := testField(t)
	url := ts.URL + "/v1/compress?dims=" + dims + "&rel=1e-3"

	// Two requests enter: one takes the worker slot, one waits in the
	// queue. Their bodies are pipes we have not finished writing, so both
	// park inside the handler until released.
	type stalled struct {
		w    *io.PipeWriter
		done chan *http.Response
	}
	var held []stalled
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		req, err := http.NewRequest("POST", url, pr)
		if err != nil {
			t.Fatal(err)
		}
		req.ContentLength = int64(len(body))
		done := make(chan *http.Response, 1)
		go func() {
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				close(done)
				return
			}
			done <- resp
		}()
		// Feed a prefix so the request is surely admitted and reading.
		if _, err := pw.Write(body[:16]); err != nil {
			t.Fatal(err)
		}
		held = append(held, stalled{w: pw, done: done})
	}
	waitFor(t, func() bool { return s.QueueDepth() == 2 })

	resp := post(t, url, body)
	msg := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429 (%s)", resp.StatusCode, msg)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Release the stalled requests; both must complete successfully.
	for _, h := range held {
		if _, err := h.w.Write(body[16:]); err != nil {
			t.Fatal(err)
		}
		h.w.Close()
	}
	for i, h := range held {
		select {
		case resp, ok := <-h.done:
			if !ok {
				t.Fatalf("request %d failed", i)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("held request %d: %d", i, resp.StatusCode)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("held request %d never completed", i)
		}
	}
	waitFor(t, func() bool { return s.QueueDepth() == 0 })

	// The rejection is visible in /metrics.
	mresp := post(t, ts.URL+"/metrics", nil)
	mresp.Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, resp.Body))
	resp.Body.Close()
	if !strings.Contains(metrics, `cliz_rejected_total{endpoint="compress"} 1`) {
		t.Errorf("rejection not counted:\n%s", grepLines(metrics, "rejected"))
	}
}

// TestConcurrentRequests hammers a small pool from many goroutines; run
// under -race this is the regression for handler-shared state.
func TestConcurrentRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 4, Queue: 64})
	ds, body, dims := testField(t)
	blob, _, err := cliz.Compress(ds, cliz.Rel(1e-3), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp *http.Response
			if i%2 == 0 {
				resp = post(t, ts.URL+"/v1/compress?dims="+dims+"&rel=1e-3&lead=time&periodic=1", body)
			} else {
				resp = post(t, ts.URL+"/v1/decompress", blob)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMetricsEndpoint checks the exposition contains every metric family
// the smoke script scrapes.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	_, body, dims := testField(t)
	resp := post(t, ts.URL+"/v1/compress?dims="+dims+"&rel=1e-3", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAll(t, mr.Body))
	mr.Body.Close()
	for _, want := range []string{
		`cliz_requests_total{endpoint="compress",code="200"} 1`,
		`cliz_request_seconds_bucket{endpoint="compress",le="+Inf"} 1`,
		`cliz_request_seconds_count{endpoint="compress"} 1`,
		`cliz_stage_seconds_total{endpoint="compress"`,
		`cliz_tune_cache_hits_total 0`,
		`cliz_queue_depth 0`,
		`cliz_uptime_seconds`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("missing %q in:\n%s", want, metrics)
		}
	}
}

// TestHealthz checks the liveness endpoint shape.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h["status"] != "ok" || h["workers"] != float64(3) {
		t.Fatalf("healthz: %+v", h)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
