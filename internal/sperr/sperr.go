// Package sperr reimplements the SPERR baseline (NCAR's wavelet compressor:
// CDF 9/7 transform + coefficient coding + outlier correction), the
// wavelet-based comparator of the paper's evaluation.
//
// The pipeline: a multi-level dyadic CDF 9/7 lifting transform decorrelates
// the field; coefficients are uniformly quantized and entropy-coded
// (Huffman + flate); a correction pass then guarantees the absolute error
// bound exactly as SPERR's outlier coding does — every point whose
// wavelet-domain reconstruction violates the bound gets an explicit
// quantized correction. Fill values produce huge coefficients across whole
// subbands, so masked climate fields code poorly — the transform-coder
// weakness the paper exploits (§V-A).
package sperr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cliz/internal/codec"
	"cliz/internal/dataset"
	"cliz/internal/huffman"
	"cliz/internal/lossless"
	"cliz/internal/quant"
)

const (
	magic = "SPR1"
	// maxLevels bounds the dyadic decomposition depth.
	maxLevels = 5
	// stepFactor sets the quantization step as a fraction of the error
	// bound; smaller steps cost coefficient bits but produce fewer
	// outliers. 1.0 balances well for smooth fields.
	stepFactor = 1.0
)

// ErrCorrupt reports a malformed SPERR blob.
var ErrCorrupt = errors.New("sperr: corrupt blob")

// Compressor implements codec.Compressor.
type Compressor struct{}

func init() { codec.Register(Compressor{}) }

// Name implements codec.Compressor.
func (Compressor) Name() string { return "SPERR" }

func zigzag(k int64) uint64 { return uint64((k << 1) ^ (k >> 63)) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// Compress implements codec.Compressor.
func (Compressor) Compress(ds *dataset.Dataset, eb float64) ([]byte, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if eb <= 0 || math.IsInf(eb, 0) || math.IsNaN(eb) {
		return nil, fmt.Errorf("sperr: error bound must be positive and finite, got %g", eb)
	}
	dims := ds.Dims
	vol := len(ds.Data)
	step := eb * stepFactor

	// Forward transform.
	coeff := make([]float64, vol)
	for i, v := range ds.Data {
		coeff[i] = float64(v)
	}
	dwt(coeff, dims, maxLevels, true)

	// Uniform quantization. Coefficients that overflow the symbol range
	// (possible with fill-value energy) are stored as exact literals.
	const maxBin = int64(1) << 40
	syms := make([]uint32, 0, vol)
	var bigSyms []uint64 // zigzag bins too large for uint32 symbols
	deq := make([]float64, vol)
	for i, c := range coeff {
		k := int64(math.Round(c / step))
		if k > maxBin || k < -maxBin || math.IsNaN(c) {
			k = 0 // treated as zero; the outlier pass repairs the damage
		}
		z := zigzag(k)
		if z < 1<<31 {
			syms = append(syms, uint32(z)<<1)
		} else {
			syms = append(syms, 1) // escape symbol (odd): value in side list
			bigSyms = append(bigSyms, z)
		}
		deq[i] = float64(k) * step
	}

	// Reconstruct to find outliers.
	dwt(deq, dims, maxLevels, false)
	q := quant.New(eb, quant.DefaultRadius)
	var outIdx []byte // varint deltas
	var outBins []byte
	var outLits []float32
	nOut := 0
	prev := 0
	for i, v := range ds.Data {
		// The decoder emits float32, so the outlier test must use the
		// float32-rounded prediction or large values (e.g. fills) would
		// slip past the bound through rounding alone.
		pred := float64(float32(deq[i]))
		if math.Abs(float64(v)-pred) <= eb {
			continue
		}
		bin, _, exact := q.Quantize(pred, float64(v))
		outIdx = appendUvarint(outIdx, uint64(i-prev))
		prev = i
		outBins = appendUvarint(outBins, uint64(bin))
		if exact {
			outLits = append(outLits, v)
		}
		nOut++
	}

	// Serialize.
	out := make([]byte, 0, vol)
	out = append(out, magic...)
	out = append(out, 1) // version
	out = append(out, byte(len(dims)))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(eb))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(step))
	out = append(out, b8[:]...)
	for _, d := range dims {
		out = appendUvarint(out, uint64(d))
	}
	be := lossless.Flate{Level: 6}
	out = appendBlob(out, lossless.Encode(be, huffman.EncodeBlock(syms)))
	var bigBuf []byte
	bigBuf = appendUvarint(bigBuf, uint64(len(bigSyms)))
	for _, z := range bigSyms {
		bigBuf = appendUvarint(bigBuf, z)
	}
	out = appendBlob(out, lossless.Encode(be, bigBuf))
	var outHdr []byte
	outHdr = appendUvarint(outHdr, uint64(nOut))
	outHdr = append(outHdr, outIdx...)
	outHdr = append(outHdr, outBins...)
	out = appendBlob(out, lossless.Encode(be, outHdr))
	out = appendBlob(out, lossless.Encode(be, float32sToBytes(outLits)))
	return out, nil
}

// Decompress implements codec.Compressor.
func (Compressor) Decompress(blob []byte) ([]float32, []int, error) {
	if len(blob) < 6 || string(blob[:4]) != magic {
		return nil, nil, ErrCorrupt
	}
	pos := 4
	if blob[pos] != 1 {
		return nil, nil, fmt.Errorf("sperr: unsupported version %d", blob[pos])
	}
	pos++
	rank := int(blob[pos])
	pos++
	if rank < 1 || rank > 4 || len(blob)-pos < 16 {
		return nil, nil, ErrCorrupt
	}
	eb := math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	pos += 8
	step := math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
	pos += 8
	if eb <= 0 || step <= 0 || math.IsNaN(eb) || math.IsNaN(step) {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, rank)
	vol := 1
	for i := range dims {
		d, err := readUvarint(blob, &pos)
		if err != nil || d == 0 || d > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		vol *= int(d)
		if vol > 1<<33 {
			return nil, nil, ErrCorrupt
		}
	}
	symsSec, err := readBlob(blob, &pos)
	if err != nil {
		return nil, nil, err
	}
	raw, err := lossless.Decode(symsSec)
	if err != nil {
		return nil, nil, err
	}
	syms, _, err := huffman.DecodeBlock(raw)
	if err != nil {
		return nil, nil, err
	}
	if len(syms) != vol {
		return nil, nil, ErrCorrupt
	}
	bigSec, err := readBlob(blob, &pos)
	if err != nil {
		return nil, nil, err
	}
	bigBuf, err := lossless.Decode(bigSec)
	if err != nil {
		return nil, nil, err
	}
	bp := 0
	nBig, err := readUvarint(bigBuf, &bp)
	if err != nil {
		return nil, nil, err
	}
	bigSyms := make([]uint64, nBig)
	for i := range bigSyms {
		z, err := readUvarint(bigBuf, &bp)
		if err != nil {
			return nil, nil, err
		}
		bigSyms[i] = z
	}
	outSec, err := readBlob(blob, &pos)
	if err != nil {
		return nil, nil, err
	}
	outHdr, err := lossless.Decode(outSec)
	if err != nil {
		return nil, nil, err
	}
	litSec, err := readBlob(blob, &pos)
	if err != nil {
		return nil, nil, err
	}
	litBytes, err := lossless.Decode(litSec)
	if err != nil {
		return nil, nil, err
	}
	outLits, err := bytesToFloat32s(litBytes)
	if err != nil {
		return nil, nil, err
	}

	// Dequantize + inverse transform.
	deq := make([]float64, vol)
	bi := 0
	for i, s := range syms {
		var z uint64
		if s&1 == 1 {
			if bi >= len(bigSyms) {
				return nil, nil, ErrCorrupt
			}
			z = bigSyms[bi]
			bi++
		} else {
			z = uint64(s >> 1)
		}
		deq[i] = float64(unzig(z)) * step
	}
	dwt(deq, dims, maxLevels, false)

	data := make([]float32, vol)
	for i, v := range deq {
		data[i] = float32(v)
	}
	// Apply outlier corrections.
	op := 0
	nOut, err := readUvarint(outHdr, &op)
	if err != nil {
		return nil, nil, err
	}
	idxs := make([]int, nOut)
	prev := 0
	for i := range idxs {
		d, err := readUvarint(outHdr, &op)
		if err != nil {
			return nil, nil, err
		}
		prev += int(d)
		if prev >= vol {
			return nil, nil, ErrCorrupt
		}
		idxs[i] = prev
	}
	q := quant.New(eb, quant.DefaultRadius)
	li := 0
	for _, idx := range idxs {
		b, err := readUvarint(outHdr, &op)
		if err != nil {
			return nil, nil, err
		}
		var lit float64
		if b == 0 {
			if li >= len(outLits) {
				return nil, nil, ErrCorrupt
			}
			lit = float64(outLits[li])
			li++
		}
		// Use the same float32-rounded prediction the encoder tested.
		data[idx] = float32(q.Recover(float64(data[idx]), int32(b), lit))
	}
	return data, dims, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func readUvarint(src []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(src[*pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	*pos += n
	return v, nil
}

func appendBlob(dst, payload []byte) []byte {
	dst = appendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

func readBlob(src []byte, pos *int) ([]byte, error) {
	l, err := readUvarint(src, pos)
	if err != nil {
		return nil, err
	}
	if uint64(*pos)+l > uint64(len(src)) {
		return nil, ErrCorrupt
	}
	out := src[*pos : *pos+int(l)]
	*pos += int(l)
	return out, nil
}

func float32sToBytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToFloat32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, ErrCorrupt
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}
