package sperr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/stats"
)

func TestWavelet1DPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 8, 9, 17, 64, 100, 255} {
		x := make([]float64, n)
		orig := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
			orig[i] = x[i]
		}
		scratch := make([]float64, n)
		fwd97(x, scratch)
		inv97(x, scratch)
		for i := range x {
			if math.Abs(x[i]-orig[i]) > 1e-9*math.Max(1, math.Abs(orig[i])) {
				t.Fatalf("n=%d i=%d: %g vs %g", n, i, x[i], orig[i])
			}
		}
	}
}

func TestWaveletEnergyCompaction(t *testing.T) {
	// A smooth signal must concentrate energy in the low band.
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) / 20)
	}
	scratch := make([]float64, n)
	fwd97(x, scratch)
	low, high := 0.0, 0.0
	for i, v := range x {
		if i < (n+1)/2 {
			low += v * v
		} else {
			high += v * v
		}
	}
	if low < 100*high {
		t.Fatalf("poor compaction: low %g high %g", low, high)
	}
}

func TestDWTMultiLevelInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][]int{{64}, {32, 48}, {10, 24, 36}, {3, 5, 16, 24}} {
		vol := 1
		for _, d := range dims {
			vol *= d
		}
		data := make([]float64, vol)
		orig := make([]float64, vol)
		for i := range data {
			data[i] = rng.NormFloat64() * 10
			orig[i] = data[i]
		}
		dwt(data, dims, maxLevels, true)
		dwt(data, dims, maxLevels, false)
		for i := range data {
			if math.Abs(data[i]-orig[i]) > 1e-8*math.Max(1, math.Abs(orig[i])) {
				t.Fatalf("dims %v i=%d: %g vs %g", dims, i, data[i], orig[i])
			}
		}
	}
}

func TestLevelScheduleDeterministicAndBounded(t *testing.T) {
	s := levelSchedule([]int{100, 37, 5}, maxLevels)
	if len(s) == 0 || len(s) > maxLevels {
		t.Fatalf("levels %d", len(s))
	}
	// Dim 2 (extent 5 < 8) must never shrink.
	for _, region := range s {
		if region[2] != 5 {
			t.Fatalf("small dim was transformed: %v", region)
		}
	}
	// Tiny grids get no levels.
	if len(levelSchedule([]int{4, 4}, maxLevels)) != 0 {
		t.Fatal("tiny grid should have no transform levels")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(k int64) bool { return unzig(zigzag(k)) == k }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func roundTrip(t *testing.T, ds *dataset.Dataset, eb float64) []float32 {
	t.Helper()
	var c Compressor
	blob, err := c.Compress(ds, eb)
	if err != nil {
		t.Fatal(err)
	}
	got, dims, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != len(ds.Dims) {
		t.Fatalf("dims %v", dims)
	}
	return got
}

func TestRoundTripErrorBound(t *testing.T) {
	ds := datagen.HurricaneT(0.06)
	for _, rel := range []float64{1e-1, 1e-2, 1e-3} {
		eb := ds.AbsErrorBound(rel)
		got := roundTrip(t, ds, eb)
		if e := stats.MaxAbsErr(ds.Data, got, nil); e > eb*(1+1e-9) {
			t.Fatalf("rel %g: max error %g > %g", rel, e, eb)
		}
	}
}

func TestRoundTripWithFillValues(t *testing.T) {
	// The strict bound must hold even at 1e36 fill points (via outliers).
	ds := datagen.SSH(0.08)
	eb := ds.AbsErrorBound(1e-2)
	got := roundTrip(t, ds, eb)
	if e := stats.MaxAbsErr(ds.Data, got, nil); e > eb*(1+1e-9) {
		t.Fatalf("max error %g > %g", e, eb)
	}
}

func TestOutlierFractionSmallOnSmoothData(t *testing.T) {
	ds := datagen.CESMT(0.05)
	eb := ds.AbsErrorBound(1e-3)
	var c Compressor
	blob, err := c.Compress(ds, eb)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.MaxAbsErr(ds.Data, got, nil); e > eb*(1+1e-9) {
		t.Fatalf("bound violated: %g > %g", e, eb)
	}
	// Sanity: reasonable compression on a smooth field.
	if ratio := stats.Ratio(ds.Points(), len(blob)); ratio < 4 {
		t.Fatalf("weak compression on smooth data: ratio %.1f", ratio)
	}
}

func TestSmallAndOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][]int{{5}, {2, 2}, {7, 9}, {1, 33, 7}} {
		vol := 1
		for _, d := range dims {
			vol *= d
		}
		data := make([]float32, vol)
		for i := range data {
			data[i] = float32(rng.NormFloat64())
		}
		ds := &dataset.Dataset{Name: "odd", Data: data, Dims: dims}
		got := roundTrip(t, ds, 0.05)
		if e := stats.MaxAbsErr(data, got, nil); e > 0.05*(1+1e-9) {
			t.Fatalf("%v: err %g", dims, e)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	var c Compressor
	ds := datagen.HurricaneT(0.05)
	blob, err := c.Compress(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]byte{nil, []byte("1234"), blob[:12], blob[:len(blob)/2]} {
		if _, _, err := c.Decompress(bad); err == nil {
			t.Fatalf("corrupt blob (%d bytes) accepted", len(bad))
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	var c Compressor
	ds := &dataset.Dataset{Name: "x", Data: make([]float32, 4), Dims: []int{2, 2}}
	for _, eb := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := c.Compress(ds, eb); err == nil {
			t.Fatalf("eb %g accepted", eb)
		}
	}
}
