package sperr

// CDF 9/7 lifting coefficients (the JPEG2000 irreversible filter SPERR
// builds on).
const (
	lift1 = -1.586134342059924
	lift2 = -0.052980118572961
	lift3 = 0.882911075530934
	lift4 = 0.443506852043971
	kappa = 1.230174104914001
)

// fwd97 applies the forward CDF 9/7 transform in place to x (n ≥ 2),
// using whole-sample symmetric extension, then deinterleaves so the
// low band occupies x[:ceil(n/2)] and the high band the remainder.
func fwd97(x, scratch []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	at := func(i int) float64 {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
		return x[i]
	}
	// Four lifting steps.
	for i := 1; i < n; i += 2 {
		x[i] += lift1 * (at(i-1) + at(i+1))
	}
	for i := 0; i < n; i += 2 {
		x[i] += lift2 * (at(i-1) + at(i+1))
	}
	for i := 1; i < n; i += 2 {
		x[i] += lift3 * (at(i-1) + at(i+1))
	}
	for i := 0; i < n; i += 2 {
		x[i] += lift4 * (at(i-1) + at(i+1))
	}
	// Scale and deinterleave: evens → low band, odds → high band.
	nLow := (n + 1) / 2
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			scratch[i/2] = x[i] * (1 / kappa)
		} else {
			scratch[nLow+i/2] = x[i] * kappa
		}
	}
	copy(x, scratch[:n])
}

// inv97 reverses fwd97.
func inv97(x, scratch []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	nLow := (n + 1) / 2
	// Interleave and unscale.
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			scratch[i] = x[i/2] * kappa
		} else {
			scratch[i] = x[nLow+i/2] * (1 / kappa)
		}
	}
	copy(x, scratch[:n])
	at := func(i int) float64 {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
		return x[i]
	}
	// Undo lifting in reverse order with negated coefficients.
	for i := 0; i < n; i += 2 {
		x[i] -= lift4 * (at(i-1) + at(i+1))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= lift3 * (at(i-1) + at(i+1))
	}
	for i := 0; i < n; i += 2 {
		x[i] -= lift2 * (at(i-1) + at(i+1))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= lift1 * (at(i-1) + at(i+1))
	}
}

// minTransformExtent is the smallest extent worth transforming at a level.
const minTransformExtent = 8

// levelSchedule returns, per level, which dims are transformed and the
// region extents entering that level. The schedule is a pure function of
// dims so the decoder recomputes it identically.
func levelSchedule(dims []int, maxLevels int) [][]int {
	cur := append([]int(nil), dims...)
	var levels [][]int
	for l := 0; l < maxLevels; l++ {
		any := false
		for _, d := range cur {
			if d >= minTransformExtent {
				any = true
			}
		}
		if !any {
			break
		}
		levels = append(levels, append([]int(nil), cur...))
		for i, d := range cur {
			if d >= minTransformExtent {
				cur[i] = (d + 1) / 2
			}
		}
	}
	return levels
}

// dwt applies the multi-level dyadic transform (forward when fwd is true)
// over the nD array in place.
func dwt(data []float64, dims []int, maxLevels int, fwd bool) {
	n := len(dims)
	strides := make([]int, n)
	acc := 1
	for i := n - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= dims[i]
	}
	levels := levelSchedule(dims, maxLevels)
	maxDim := 0
	for _, d := range dims {
		if d > maxDim {
			maxDim = d
		}
	}
	line := make([]float64, maxDim)
	scratch := make([]float64, maxDim)

	apply := func(region []int, level int) {
		order := make([]int, 0, n)
		for d := 0; d < n; d++ {
			if region[d] >= minTransformExtent {
				order = append(order, d)
			}
		}
		if !fwd {
			for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
				order[i], order[j] = order[j], order[i]
			}
		}
		for _, d := range order {
			ext := region[d]
			// Iterate all lines along d within the region.
			idx := make([]int, n)
			for {
				// Gather.
				base := 0
				for k := 0; k < n; k++ {
					base += idx[k] * strides[k]
				}
				for i := 0; i < ext; i++ {
					line[i] = data[base+i*strides[d]]
				}
				if fwd {
					fwd97(line[:ext], scratch)
				} else {
					inv97(line[:ext], scratch)
				}
				for i := 0; i < ext; i++ {
					data[base+i*strides[d]] = line[i]
				}
				// Advance to the next line (skip dim d).
				carry := n - 1
				for ; carry >= 0; carry-- {
					if carry == d {
						continue
					}
					idx[carry]++
					if idx[carry] < region[carry] {
						break
					}
					idx[carry] = 0
				}
				if carry < 0 {
					break
				}
			}
		}
		_ = level
	}

	if fwd {
		for l, region := range levels {
			apply(region, l)
		}
	} else {
		for l := len(levels) - 1; l >= 0; l-- {
			apply(levels[l], l)
		}
	}
}
