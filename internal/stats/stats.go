// Package stats computes the distortion and rate metrics used throughout the
// paper's evaluation (§VII-B): PSNR (Formula (3)), windowed SSIM
// (Formulas (4)–(5)) computed in O(n) with summed-area tables, RMSE, maximum
// absolute error, Pearson correlation, value range, and bit-rate. All metrics
// optionally skip masked (invalid) points, matching how climate tools score
// only valid regions.
package stats

import (
	"math"
)

// Range returns (min, max) over the valid points of x. valid may be nil.
func Range(x []float32, valid []bool) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range x {
		if valid != nil && !valid[i] {
			continue
		}
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

// RMSE returns the root mean squared error over valid points.
func RMSE(a, b []float32, valid []bool) float64 {
	var sum float64
	n := 0
	for i := range a {
		if valid != nil && !valid[i] {
			continue
		}
		d := float64(a[i]) - float64(b[i])
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// MaxAbsErr returns the maximum pointwise absolute error over valid points.
func MaxAbsErr(a, b []float32, valid []bool) float64 {
	m := 0.0
	for i := range a {
		if valid != nil && !valid[i] {
			continue
		}
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// PSNR implements the paper's Formula (3): 20·log10((max−min)/RMSE), where
// the range is taken over the original data's valid points. A perfect
// reconstruction returns +Inf.
func PSNR(orig, recon []float32, valid []bool) float64 {
	lo, hi := Range(orig, valid)
	rmse := RMSE(orig, recon, valid)
	if rmse == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10((hi-lo)/rmse)
}

// Pearson returns the Pearson correlation coefficient over valid points.
func Pearson(a, b []float32, valid []bool) float64 {
	var sa, sb, saa, sbb, sab float64
	n := 0
	for i := range a {
		if valid != nil && !valid[i] {
			continue
		}
		x, y := float64(a[i]), float64(b[i])
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
		n++
	}
	if n == 0 {
		return 0
	}
	fn := float64(n)
	cov := sab - sa*sb/fn
	va := saa - sa*sa/fn
	vb := sbb - sb*sb/fn
	den := math.Sqrt(va * vb)
	if den == 0 {
		return 1
	}
	return cov / den
}

// BitRate returns the average bits per data point for a compressed size.
func BitRate(compressedBytes, points int) float64 {
	if points == 0 {
		return 0
	}
	return float64(compressedBytes) * 8 / float64(points)
}

// Ratio returns the compression ratio S/S' for float32 data.
func Ratio(points, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return 0
	}
	return float64(points*4) / float64(compressedBytes)
}

// SSIM computes the mean windowed SSIM (Formulas (4)–(5)) over every 2D
// slice of the dataset: dims' trailing two axes form the image plane and the
// leading axes are iterated, averaging all slices. Window is the (square)
// sliding-window side; the standard c1, c2 constants use the original data's
// dynamic range. Masked points contribute zeros to the window sums (the same
// simplification climate SSIM tools apply to fill values after range
// normalization).
func SSIM(orig, recon []float32, dims []int, window int, valid []bool) float64 {
	if len(dims) < 2 {
		// Treat 1D as a 1×n image.
		dims = []int{1, dims[0]}
	}
	h := dims[len(dims)-2]
	w := dims[len(dims)-1]
	planes := 1
	for _, d := range dims[:len(dims)-2] {
		planes *= d
	}
	if window > h {
		window = h
	}
	if window > w {
		window = w
	}
	if window < 2 {
		window = 2
		if h < 2 || w < 2 {
			return 1
		}
	}
	lo, hi := Range(orig, valid)
	L := hi - lo
	if L == 0 {
		L = 1
	}
	c1 := (0.01 * L) * (0.01 * L)
	c2 := (0.03 * L) * (0.03 * L)

	var total float64
	var count int
	plane := h * w
	for p := 0; p < planes; p++ {
		off := p * plane
		s, n := ssimPlane(orig[off:off+plane], recon[off:off+plane], h, w, window, c1, c2, sliceValid(valid, off, plane))
		total += s
		count += n
	}
	if count == 0 {
		return 1
	}
	return total / float64(count)
}

func sliceValid(valid []bool, off, n int) []bool {
	if valid == nil {
		return nil
	}
	return valid[off : off+n]
}

// ssimPlane computes the summed SSIM over all window positions of one plane
// using summed-area tables, returning (sum, windowCount).
func ssimPlane(x, y []float32, h, w, win int, c1, c2 float64, valid []bool) (float64, int) {
	// Summed-area tables for x, y, x², y², xy.
	W := w + 1
	sx := make([]float64, (h+1)*W)
	sy := make([]float64, (h+1)*W)
	sxx := make([]float64, (h+1)*W)
	syy := make([]float64, (h+1)*W)
	sxy := make([]float64, (h+1)*W)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			idx := i*w + j
			var a, b float64
			if valid == nil || valid[idx] {
				a, b = float64(x[idx]), float64(y[idx])
			}
			t := (i+1)*W + (j + 1)
			l := (i+1)*W + j
			u := i*W + (j + 1)
			ul := i*W + j
			sx[t] = a + sx[l] + sx[u] - sx[ul]
			sy[t] = b + sy[l] + sy[u] - sy[ul]
			sxx[t] = a*a + sxx[l] + sxx[u] - sxx[ul]
			syy[t] = b*b + syy[l] + syy[u] - syy[ul]
			sxy[t] = a*b + sxy[l] + sxy[u] - sxy[ul]
		}
	}
	box := func(s []float64, i0, j0 int) float64 {
		i1, j1 := i0+win, j0+win
		return s[i1*W+j1] - s[i0*W+j1] - s[i1*W+j0] + s[i0*W+j0]
	}
	np := float64(win * win)
	var sum float64
	var cnt int
	// Slide with stride 1 — summed-area tables make this O(h·w).
	for i0 := 0; i0+win <= h; i0++ {
		for j0 := 0; j0+win <= w; j0++ {
			mx := box(sx, i0, j0) / np
			my := box(sy, i0, j0) / np
			vx := box(sxx, i0, j0)/np - mx*mx
			vy := box(syy, i0, j0)/np - my*my
			cxy := box(sxy, i0, j0)/np - mx*my
			if vx < 0 {
				vx = 0
			}
			if vy < 0 {
				vy = 0
			}
			s := ((2*mx*my + c1) * (2*cxy + c2)) / ((mx*mx + my*my + c1) * (vx + vy + c2))
			sum += s
			cnt++
		}
	}
	return sum, cnt
}
