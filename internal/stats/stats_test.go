package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRange(t *testing.T) {
	x := []float32{3, -1, 7, 2}
	lo, hi := Range(x, nil)
	if lo != -1 || hi != 7 {
		t.Fatalf("range = (%g,%g)", lo, hi)
	}
	valid := []bool{true, false, false, true}
	lo, hi = Range(x, valid)
	if lo != 2 || hi != 3 {
		t.Fatalf("masked range = (%g,%g)", lo, hi)
	}
	lo, hi = Range(nil, nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty range")
	}
}

func TestRMSEAndMaxErr(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{1, 2, 3, 4}
	if RMSE(a, b, nil) != 0 || MaxAbsErr(a, b, nil) != 0 {
		t.Fatal("identical arrays should have zero error")
	}
	b = []float32{2, 2, 3, 4}
	if got := RMSE(a, b, nil); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RMSE = %g", got)
	}
	if got := MaxAbsErr(a, b, nil); got != 1 {
		t.Fatalf("MaxAbsErr = %g", got)
	}
	// Masked point excluded.
	valid := []bool{false, true, true, true}
	if got := MaxAbsErr(a, b, valid); got != 0 {
		t.Fatalf("masked MaxAbsErr = %g", got)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// range 10, rmse 0.1 → PSNR = 20·log10(100) = 40 dB
	n := 1000
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i % 11) // range 0..10
		if i%2 == 0 {
			b[i] = a[i] + 0.1
		} else {
			b[i] = a[i] - 0.1
		}
	}
	got := PSNR(a, b, nil)
	if math.Abs(got-40) > 0.2 {
		t.Fatalf("PSNR = %g want ≈40", got)
	}
	if !math.IsInf(PSNR(a, a, nil), 1) {
		t.Fatal("perfect reconstruction should be +Inf")
	}
}

func TestPSNRIncreasesWithFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 5000
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(rng.NormFloat64() * 10)
	}
	noisy := func(s float64) []float32 {
		b := make([]float32, n)
		for i := range b {
			b[i] = a[i] + float32(rng.NormFloat64()*s)
		}
		return b
	}
	p1 := PSNR(a, noisy(1), nil)
	p2 := PSNR(a, noisy(0.1), nil)
	p3 := PSNR(a, noisy(0.01), nil)
	if !(p1 < p2 && p2 < p3) {
		t.Fatalf("PSNR not monotone: %g %g %g", p1, p2, p3)
	}
}

func TestPearson(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	if got := Pearson(a, a, nil); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation %g", got)
	}
	b := []float32{5, 4, 3, 2, 1}
	if got := Pearson(a, b, nil); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation %g", got)
	}
}

func TestBitRateAndRatio(t *testing.T) {
	if got := BitRate(4000, 1000); got != 32 {
		t.Fatalf("BitRate = %g", got)
	}
	if got := Ratio(1000, 400); got != 10 {
		t.Fatalf("Ratio = %g", got)
	}
	if Ratio(10, 0) != 0 || BitRate(1, 0) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestSSIMPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := []int{4, 32, 32}
	n := 4 * 32 * 32
	a := make([]float32, n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	if got := SSIM(a, a, dims, 8, nil); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self SSIM = %g", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, w := 64, 64
	a := make([]float32, h*w)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			a[i*w+j] = float32(math.Sin(float64(i)/5) + math.Cos(float64(j)/7))
		}
	}
	mk := func(s float64) []float32 {
		b := make([]float32, len(a))
		for i := range b {
			b[i] = a[i] + float32(rng.NormFloat64()*s)
		}
		return b
	}
	s1 := SSIM(a, mk(0.001), []int{h, w}, 8, nil)
	s2 := SSIM(a, mk(0.3), []int{h, w}, 8, nil)
	if !(s2 < s1) {
		t.Fatalf("SSIM not degrading: %g vs %g", s1, s2)
	}
	if s1 < 0.99 {
		t.Fatalf("near-identical image scored %g", s1)
	}
	if s2 > 0.95 {
		t.Fatalf("noisy image scored too high: %g", s2)
	}
}

func TestSSIM1D(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	got := SSIM(a, a, []int{8}, 4, nil)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("1D self SSIM = %g", got)
	}
}

func TestSSIMWindowLargerThanImage(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	got := SSIM(a, a, []int{2, 2}, 16, nil)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("tiny image SSIM = %g", got)
	}
}

func TestSSIMRangeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float32, 32*32)
	b := make([]float32, 32*32)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	got := SSIM(a, b, []int{32, 32}, 8, nil)
	if got < -1.0001 || got > 1.0001 {
		t.Fatalf("SSIM out of range: %g", got)
	}
}
