// Package stream implements the CliZ temporal streaming codec: an
// append-oriented container where each timestep is either a sync frame (an
// independent CliZ blob) or a delta frame whose every point is quantized
// against the decoder-visible reconstruction of the previous frame.
//
// Predicting from the *reconstruction* rather than the original data is the
// SZ3 correctness discipline: the quantizer verifies each point against the
// value the decoder will hold, so the absolute error bound holds per frame
// with zero drift accumulation no matter how long the stream runs.
//
// Stream layout (all integers uvarint unless noted):
//
//	magic "CLZS" | version 1 | flags | eb float64 LE | fill float32 LE
//	radius | ndims | dims... | keyframe interval
//	mask section (flagStreamMask: length + mask.Serialize bytes)
//	CRC-32C uint32 LE over every header byte so far
//	frame records, appended in time order:
//	  kind byte | frame index | sync offset | payload length
//	  | payload CRC-32C uint32 LE | payload
//
// The frame index must equal the record's position in the stream and the
// sync offset must point at the byte offset of the governing sync record
// (the record's own offset for key/intra frames), so a scan validates the
// chain structurally before any payload is touched. Key and intra payloads
// are full CliZ blobs; delta payloads are two framed sections (entropy-coded
// quantization bins of the valid points, then float32 literals), each put
// through the lossless backend.
//
// There is no footer: a stream truncated at a record boundary is a valid
// shorter stream, which is exactly the crash semantics an append workload
// wants. Truncation inside a record is reported as corruption.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"cliz/internal/core"
	"cliz/internal/mask"
)

const (
	streamMagic   = "CLZS"
	streamVersion = 1
)

// flagStreamMask marks a horizontal mask section in the header.
const flagStreamMask byte = 1 << 0

// crcTable is the Castagnoli (CRC-32C) table, matching the core blob format.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Kind classifies one frame record.
type Kind byte

const (
	// KindKey is a scheduled keyframe: an independent CliZ blob.
	KindKey Kind = iota
	// KindDelta is a temporal delta against the previous reconstruction.
	KindDelta
	// KindIntra is an off-schedule independent frame: the writer fell back
	// to intra-frame prediction because the temporal residual lost.
	KindIntra
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindKey:
		return "key"
	case KindDelta:
		return "delta"
	case KindIntra:
		return "intra"
	}
	return fmt.Sprintf("kind-%d", byte(k))
}

// Sync reports whether a frame of this kind decodes without a predecessor
// (and therefore starts a new replay chain for Seek).
func (k Kind) Sync() bool { return k == KindKey || k == KindIntra }

// Hard resource caps for untrusted streams, mirroring the core decode caps:
// a hostile header must not trigger allocations the payload cannot back.
const (
	// maxStreamRank bounds the per-frame rank (frames are core datasets).
	maxStreamRank = 4
	// maxFrameVolume caps the per-frame point count a stream may declare.
	maxFrameVolume = 1 << 31
	// maxPointsPerByte caps declared frame points per stream byte (the same
	// margin argument as the core cap: the densest legitimate encodings stay
	// thousands of times below it).
	maxPointsPerByte = 1 << 16
	// maxInterval bounds the declared keyframe interval.
	maxInterval = 1 << 20
)

// ErrCorrupt reports a malformed CliZ stream. It wraps core.ErrCorrupt so
// the package-spanning errors.Is(err, core.ErrCorrupt) contract holds for
// stream corruption too.
var ErrCorrupt = fmt.Errorf("stream: corrupt CliZ stream: %w", core.ErrCorrupt)

// ErrChecksum reports a CRC-32C mismatch on a stream header or frame
// payload. It wraps ErrCorrupt.
var ErrChecksum = fmt.Errorf("stream: checksum mismatch: %w", ErrCorrupt)

// FrameError attributes a decode failure to one frame record, so a damaged
// frame surfaces as "frame 17 is bad" rather than an anonymous failure.
type FrameError struct {
	// Frame is the failing frame's index in the stream.
	Frame int
	Err   error
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("stream: frame %d: %v", e.Frame, e.Err)
}

func (e *FrameError) Unwrap() error { return e.Err }

// corrupt classifies a sub-package decode failure as stream corruption,
// preserving already-classified errors.
func corrupt(err error) error {
	if err == nil || errors.Is(err, core.ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrCorrupt, err)
}

// streamHeader is the parsed stream preamble.
type streamHeader struct {
	flags    byte
	eb       float64
	fill     float32
	radius   int32
	dims     []int
	interval int
	mask     *mask.Map
}

func (h *streamHeader) volume() int {
	v := 1
	for _, d := range h.dims {
		v *= d
	}
	return v
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func readUvarint(src []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(src[*pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	*pos += n
	return v, nil
}

// encodeStreamHeader renders the preamble including its trailing CRC-32C.
func encodeStreamHeader(h streamHeader) []byte {
	out := make([]byte, 0, 64)
	out = append(out, streamMagic...)
	out = append(out, streamVersion, h.flags)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(h.eb))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint32(b8[:4], math.Float32bits(h.fill))
	out = append(out, b8[:4]...)
	out = appendUvarint(out, uint64(h.radius))
	out = appendUvarint(out, uint64(len(h.dims)))
	for _, d := range h.dims {
		out = appendUvarint(out, uint64(d))
	}
	out = appendUvarint(out, uint64(h.interval))
	if h.mask != nil {
		ms := h.mask.Serialize()
		out = appendUvarint(out, uint64(len(ms)))
		out = append(out, ms...)
	}
	binary.LittleEndian.PutUint32(b8[:4], crc32.Checksum(out, crcTable))
	return append(out, b8[:4]...)
}

// checkFrameBudget gates a declared frame volume against the hard caps and
// the stream size, so a hostile header cannot drive frame-sized allocations
// past what the stream bytes can plausibly back.
func checkFrameBudget(vol, avail int) error {
	if vol > maxFrameVolume {
		return fmt.Errorf("stream: declared frame volume %d exceeds cap %d: %w",
			vol, maxFrameVolume, ErrCorrupt)
	}
	if avail < 0 {
		avail = 0
	}
	if uint64(vol) > (uint64(avail)+64)*maxPointsPerByte {
		return fmt.Errorf("stream: declared frame volume %d implausible for %d stream bytes: %w",
			vol, avail, ErrCorrupt)
	}
	return nil
}

// parseStreamHeader parses and CRC-verifies the preamble, returning the
// number of bytes consumed.
func parseStreamHeader(src []byte) (streamHeader, int, error) {
	var h streamHeader
	pos := 0
	if len(src) < len(streamMagic)+2 {
		return h, 0, fmt.Errorf("stream: truncated header: %w", ErrCorrupt)
	}
	if string(src[:4]) != streamMagic {
		return h, 0, fmt.Errorf("stream: bad magic: %w", ErrCorrupt)
	}
	pos = 4
	if src[pos] != streamVersion {
		return h, 0, fmt.Errorf("stream: unsupported version %d: %w", src[pos], ErrCorrupt)
	}
	pos++
	h.flags = src[pos]
	pos++
	if len(src)-pos < 12 {
		return h, 0, fmt.Errorf("stream: truncated header: %w", ErrCorrupt)
	}
	h.eb = math.Float64frombits(binary.LittleEndian.Uint64(src[pos:]))
	pos += 8
	h.fill = math.Float32frombits(binary.LittleEndian.Uint32(src[pos:]))
	pos += 4
	if h.eb <= 0 || math.IsNaN(h.eb) || math.IsInf(h.eb, 0) {
		return h, 0, fmt.Errorf("stream: invalid error bound %g: %w", h.eb, ErrCorrupt)
	}
	r, err := readUvarint(src, &pos)
	if err != nil || r < 2 || r > 1<<30 {
		return h, 0, fmt.Errorf("stream: invalid radius: %w", ErrCorrupt)
	}
	h.radius = int32(r)
	nd, err := readUvarint(src, &pos)
	if err != nil || nd < 1 || nd > maxStreamRank {
		return h, 0, fmt.Errorf("stream: invalid frame rank: %w", ErrCorrupt)
	}
	h.dims = make([]int, nd)
	vol := 1
	for i := range h.dims {
		d, err := readUvarint(src, &pos)
		if err != nil || d == 0 || d > maxFrameVolume {
			return h, 0, fmt.Errorf("stream: invalid frame extent: %w", ErrCorrupt)
		}
		// Overflow-safe volume accumulation, as in the core header parser.
		if int(d) > maxFrameVolume/vol {
			return h, 0, fmt.Errorf("stream: frame volume too large: %w", ErrCorrupt)
		}
		h.dims[i] = int(d)
		vol *= int(d)
	}
	if err := checkFrameBudget(vol, len(src)); err != nil {
		return h, 0, err
	}
	iv, err := readUvarint(src, &pos)
	if err != nil || iv == 0 || iv > maxInterval {
		return h, 0, fmt.Errorf("stream: invalid keyframe interval: %w", ErrCorrupt)
	}
	h.interval = int(iv)
	if h.flags&flagStreamMask != 0 {
		ml, err := readUvarint(src, &pos)
		if err != nil || ml > uint64(len(src)-pos) {
			return h, 0, fmt.Errorf("stream: truncated mask section: %w", ErrCorrupt)
		}
		m, err := mask.Parse(src[pos : pos+int(ml)])
		if err != nil {
			return h, 0, corrupt(err)
		}
		if len(h.dims) < 2 || m.NLat != h.dims[len(h.dims)-2] || m.NLon != h.dims[len(h.dims)-1] {
			return h, 0, fmt.Errorf("stream: mask %dx%d does not fit frame dims %v: %w",
				m.NLat, m.NLon, h.dims, ErrCorrupt)
		}
		h.mask = m
		pos += int(ml)
	}
	if len(src)-pos < 4 {
		return h, 0, fmt.Errorf("stream: truncated header checksum: %w", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(src[pos:])
	if got := crc32.Checksum(src[:pos], crcTable); got != want {
		return h, 0, fmt.Errorf("stream: header: %w", ErrChecksum)
	}
	pos += 4
	return h, pos, nil
}

// record locates one parsed frame record inside the stream.
type record struct {
	kind Kind
	// off is the byte offset of the record header.
	off int
	// payloadOff/payloadLen frame the payload bytes.
	payloadOff int
	payloadLen int
	crc        uint32
	// syncIdx is the frame index of the governing sync frame (the latest
	// key/intra frame at or before this one).
	syncIdx int
}

// appendRecordHeader renders one frame-record header. syncOff is the byte
// offset of the governing sync record; crc covers the payload.
func appendRecordHeader(dst []byte, kind Kind, index, syncOff, payloadLen int, crc uint32) []byte {
	dst = append(dst, byte(kind))
	dst = appendUvarint(dst, uint64(index))
	dst = appendUvarint(dst, uint64(syncOff))
	dst = appendUvarint(dst, uint64(payloadLen))
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], crc)
	return append(dst, b4[:]...)
}

// parseRecord parses the frame record starting at *pos, validating the
// declared index against the scan position and the sync offset against the
// chain built so far (lastSyncOff < 0 means no sync frame seen yet). The
// payload CRC is recorded but deliberately not verified here — that happens
// lazily at decode time so opening a long stream stays cheap.
func parseRecord(src []byte, pos *int, index, lastSyncOff, lastSyncIdx int) (record, error) {
	rec := record{off: *pos}
	if len(src)-*pos < 1 {
		return rec, fmt.Errorf("stream: truncated frame record: %w", ErrCorrupt)
	}
	rec.kind = Kind(src[*pos])
	if rec.kind >= numKinds {
		return rec, fmt.Errorf("stream: unknown frame kind %d: %w", byte(rec.kind), ErrCorrupt)
	}
	*pos++
	idx, err := readUvarint(src, pos)
	if err != nil || idx != uint64(index) {
		// Catches reordered, spliced and index-overflowed records: the
		// declared index must equal the record's position in the stream.
		return rec, fmt.Errorf("stream: frame %d declares index %d: %w", index, idx, ErrCorrupt)
	}
	syncOff, err := readUvarint(src, pos)
	if err != nil {
		return rec, fmt.Errorf("stream: frame %d: bad sync offset: %w", index, ErrCorrupt)
	}
	if rec.kind.Sync() {
		if syncOff != uint64(rec.off) {
			return rec, fmt.Errorf("stream: sync frame %d declares offset %d, is at %d: %w",
				index, syncOff, rec.off, ErrCorrupt)
		}
		rec.syncIdx = index
	} else {
		if lastSyncOff < 0 || syncOff != uint64(lastSyncOff) {
			// Delta frames must reference the actual preceding sync record; a
			// first-frame delta or an out-of-range offset breaks the chain.
			return rec, fmt.Errorf("stream: frame %d sync offset %d out of range (latest sync at %d): %w",
				index, syncOff, lastSyncOff, ErrCorrupt)
		}
		rec.syncIdx = lastSyncIdx
	}
	pl, err := readUvarint(src, pos)
	if err != nil {
		return rec, fmt.Errorf("stream: frame %d: bad payload length: %w", index, ErrCorrupt)
	}
	// Signed remainder first: a negative value cast to uint64 would wrap.
	rem := len(src) - *pos - 4
	if rem < 0 || pl > uint64(rem) {
		return rec, fmt.Errorf("stream: frame %d payload truncated: %w", index, ErrCorrupt)
	}
	rec.crc = binary.LittleEndian.Uint32(src[*pos:])
	*pos += 4
	rec.payloadOff = *pos
	rec.payloadLen = int(pl)
	*pos += int(pl)
	return rec, nil
}

// float32sToBytes serializes literals little-endian (the core literal wire
// format).
func float32sToBytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToFloat32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("stream: literal bytes not a multiple of 4: %w", ErrCorrupt)
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}
