package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cliz/internal/core"
)

// fuzzSeedStream builds a small valid stream for the seed corpus.
func fuzzSeedStream(tb testing.TB, interval int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{Dims: []int{6, 8}, EB: 1e-2, Interval: interval})
	if err != nil {
		tb.Fatalf("NewWriter: %v", err)
	}
	for t := 0; t < 5; t++ {
		frame := make([]float32, 48)
		for i := range frame {
			frame[i] = float32(t)*0.5 + float32(i%7)
		}
		if _, err := w.Append(frame); err != nil {
			tb.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// FuzzParse feeds arbitrary bytes to the stream parser and, when parsing
// succeeds, decodes a bounded number of frames. The contract: no panics, no
// unbounded allocations, and every rejection wraps core.ErrCorrupt.
func FuzzParse(f *testing.F) {
	valid := fuzzSeedStream(f, 2)
	f.Add(valid)
	// Truncations: inside the header, inside a record header, inside a payload.
	for _, n := range []int{0, 3, 10, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:n])
	}
	// Frame-count / index overflow: splice a huge uvarint where a record's
	// declared index lives (right after the header CRC + kind byte).
	overflow := append([]byte(nil), valid...)
	overflow = append(overflow, 0x02, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	f.Add(overflow)
	// Keyframe sync offset out of range: flip bytes in the first record header.
	badSync := append([]byte(nil), valid...)
	badSync[len(badSync)-6] ^= 0xff
	f.Add(badSync)
	// Header field flips.
	for _, off := range []int{4, 6, 14, 20} {
		bad := append([]byte(nil), valid...)
		bad[off] ^= 0x80
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Parse(data, core.DecompressOptions{})
		if err != nil {
			if !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("Parse rejection %v does not wrap core.ErrCorrupt", err)
			}
			return
		}
		// Structurally valid: decode up to 8 frames. Payload-level damage must
		// surface as an attributed FrameError wrapping core.ErrCorrupt.
		for i := 0; i < 8; i++ {
			_, err := r.ReadFrame()
			if err == io.EOF {
				break
			}
			if err == nil {
				continue
			}
			var fe *FrameError
			if !errors.As(err, &fe) && !errors.Is(err, core.ErrCorrupt) {
				t.Fatalf("ReadFrame error %v is neither FrameError nor ErrCorrupt", err)
			}
			break
		}
	})
}
