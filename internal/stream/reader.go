package stream

import (
	"fmt"
	"hash/crc32"
	"io"

	"cliz/internal/core"
	"cliz/internal/entropy"
	"cliz/internal/lossless"
	"cliz/internal/quant"
)

// RecordInfo locates one frame record inside a parsed stream. Tests and the
// conformance harness use it to target corruption at a specific frame.
type RecordInfo struct {
	Kind Kind
	// Index is the frame's position in the stream.
	Index int
	// Offset is the record header's byte offset.
	Offset int
	// PayloadOffset/PayloadLen frame the compressed payload bytes.
	PayloadOffset int
	PayloadLen    int
	// SyncIndex is the governing sync frame (the latest key/intra frame at
	// or before this one) — the replay start for a cold Seek to this frame.
	SyncIndex int
}

// Reader decodes a CliZ stream. Parse validates the header and the frame
// chain structurally (framing, indices, sync offsets); payload checksums are
// verified lazily when a frame is decoded, so opening a long stream is cheap.
//
// The Reader is positional: ReadFrame decodes the frame at the current
// position and advances, Seek repositions. A read that cannot continue from
// the held state replays from the target's governing sync frame — at most
// one keyframe interval of work, and bit-identical to sequential decode,
// because every frame's reconstruction is a pure function of the stream
// bytes.
type Reader struct {
	blob []byte
	h    streamHeader
	recs []record
	opt  core.DecompressOptions
	// valid is the broadcast per-frame validity (nil when unmasked).
	valid []bool
	// cur holds the reconstruction of frame curFrame (-1 = none yet);
	// delta frames predict from it.
	cur      []float32
	alt      []float32
	curFrame int
	pos      int
}

// Parse opens a stream: it verifies the header checksum and scans every
// frame record, validating kinds, declared indices, sync-offset chaining and
// payload framing. Hostile input fails with an error wrapping
// core.ErrCorrupt and cannot trigger allocations the stream bytes cannot
// plausibly back.
func Parse(blob []byte, opt core.DecompressOptions) (*Reader, error) {
	h, pos, err := parseStreamHeader(blob)
	if err != nil {
		return nil, err
	}
	r := &Reader{blob: blob, h: h, opt: opt, curFrame: -1}
	lastSyncOff, lastSyncIdx := -1, -1
	for pos < len(blob) {
		rec, err := parseRecord(blob, &pos, len(r.recs), lastSyncOff, lastSyncIdx)
		if err != nil {
			return nil, err
		}
		if rec.kind.Sync() {
			lastSyncOff, lastSyncIdx = rec.off, len(r.recs)
		}
		r.recs = append(r.recs, rec)
	}
	if h.mask != nil {
		valid, err := h.mask.Broadcast(h.dims)
		if err != nil {
			return nil, corrupt(err)
		}
		r.valid = valid
	}
	return r, nil
}

// Frames returns the number of frames in the stream.
func (r *Reader) Frames() int { return len(r.recs) }

// Dims returns the per-frame extents.
func (r *Reader) Dims() []int { return append([]int(nil), r.h.dims...) }

// EB returns the stream's absolute error bound.
func (r *Reader) EB() float64 { return r.h.eb }

// Interval returns the declared keyframe interval.
func (r *Reader) Interval() int { return r.h.interval }

// Pos returns the index of the frame the next ReadFrame will decode.
func (r *Reader) Pos() int { return r.pos }

// Record returns the location and kind of frame t.
func (r *Reader) Record(t int) (RecordInfo, error) {
	if t < 0 || t >= len(r.recs) {
		return RecordInfo{}, fmt.Errorf("stream: frame %d out of range [0, %d)", t, len(r.recs))
	}
	rec := r.recs[t]
	return RecordInfo{
		Kind:          rec.kind,
		Index:         t,
		Offset:        rec.off,
		PayloadOffset: rec.payloadOff,
		PayloadLen:    rec.payloadLen,
		SyncIndex:     rec.syncIdx,
	}, nil
}

// Seek positions the reader so the next ReadFrame returns frame t. The call
// is lazy and cheap: the replay (from the governing sync frame, at most one
// keyframe interval of work) happens inside the next ReadFrame. Seeking and
// sequential reading yield bit-identical frames, because every frame's
// reconstruction is a pure function of the stream bytes.
func (r *Reader) Seek(t int) error {
	if t < 0 || t >= len(r.recs) {
		return fmt.Errorf("stream: seek to frame %d out of range [0, %d)", t, len(r.recs))
	}
	r.pos = t
	return nil
}

// ReadFrame decodes the frame at the current position, advances past it and
// returns a fresh copy of the reconstruction. At end of stream it returns
// io.EOF. A payload checksum mismatch or malformed payload is reported as a
// *FrameError naming the frame, wrapping core.ErrCorrupt.
func (r *Reader) ReadFrame() ([]float32, error) {
	if r.pos >= len(r.recs) {
		return nil, io.EOF
	}
	t := r.pos
	start := t
	if !r.recs[t].kind.Sync() {
		// A delta frame needs the reconstruction of t-1. Continue from the
		// held state when it lies inside this frame's replay chain; otherwise
		// replay from the governing sync frame.
		if r.curFrame >= r.recs[t].syncIdx && r.curFrame < t {
			start = r.curFrame + 1
		} else {
			start = r.recs[t].syncIdx
		}
	}
	for i := start; i <= t; i++ {
		if err := r.decodeFrame(i); err != nil {
			return nil, err
		}
	}
	r.pos = t + 1
	out := make([]float32, len(r.cur))
	copy(out, r.cur)
	return out, nil
}

// interrupted polls the configured Interrupt hook at frame boundaries.
func (r *Reader) interrupted() error {
	if r.opt.Interrupt == nil {
		return nil
	}
	if err := r.opt.Interrupt(); err != nil {
		return fmt.Errorf("%w: %w", core.ErrInterrupted, err)
	}
	return nil
}

// decodeFrame decodes frame t into r.cur. The caller guarantees the state
// invariant: for delta frames, r.cur holds the reconstruction of t-1.
func (r *Reader) decodeFrame(t int) error {
	if err := r.interrupted(); err != nil {
		return err
	}
	rec := r.recs[t]
	payload := r.blob[rec.payloadOff : rec.payloadOff+rec.payloadLen]
	if got := crc32.Checksum(payload, crcTable); got != rec.crc {
		return &FrameError{Frame: t, Err: ErrChecksum}
	}
	if rec.kind.Sync() {
		data, dims, err := core.DecompressWithOptions(payload, r.opt)
		if err != nil {
			return &FrameError{Frame: t, Err: corrupt(err)}
		}
		if len(data) != r.h.volume() || !dimsEqual(dims, r.h.dims) {
			return &FrameError{Frame: t,
				Err: fmt.Errorf("stream: frame dims %v do not match stream dims %v: %w",
					dims, r.h.dims, ErrCorrupt)}
		}
		r.cur = data
		r.curFrame = t
		return nil
	}
	if r.curFrame != t-1 || len(r.cur) != r.h.volume() {
		// Parse guarantees the chain starts at a sync frame and ReadFrame
		// replays in order, so this only fires if the decode-order invariant
		// is broken internally.
		return &FrameError{Frame: t,
			Err: fmt.Errorf("stream: delta frame without predecessor state: %w", ErrCorrupt)}
	}
	if err := r.decodeDelta(payload); err != nil {
		return &FrameError{Frame: t, Err: corrupt(err)}
	}
	r.curFrame = t
	return nil
}

// decodeDelta reconstructs a delta frame from its payload against r.cur,
// leaving the new reconstruction in r.cur.
func (r *Reader) decodeDelta(payload []byte) error {
	vol := r.h.volume()
	workers := r.opt.Workers
	if workers < 1 {
		workers = 1
	}
	pos := 0
	binsSec, err := readDeltaSection(payload, &pos)
	if err != nil {
		return err
	}
	litSec, err := readDeltaSection(payload, &pos)
	if err != nil {
		return err
	}
	if pos != len(payload) {
		return fmt.Errorf("stream: %d trailing bytes in delta payload: %w",
			len(payload)-pos, ErrCorrupt)
	}
	raw, err := corruptDecode(binsSec)
	if err != nil {
		return err
	}
	syms, err := decodeBins(raw, workers, vol)
	if err != nil {
		return err
	}
	litBytes, err := corruptDecode(litSec)
	if err != nil {
		return err
	}
	lits, err := bytesToFloat32s(litBytes)
	if err != nil {
		return err
	}
	q := newQuantizer(r.h)
	out := r.alt
	if len(out) != vol {
		out = make([]float32, vol)
	}
	si, li := 0, 0
	maxBin := 2*uint32(r.h.radius) - 1
	for i := 0; i < vol; i++ {
		// A replayed Seek can decode a keyframe interval's worth of deltas;
		// poll mid-frame so cancellation is not gated on frame boundaries.
		if i&0xffff == 0 {
			if err := r.interrupted(); err != nil {
				return err
			}
		}
		if r.valid != nil && !r.valid[i] {
			out[i] = r.h.fill
			continue
		}
		if si >= len(syms) {
			return fmt.Errorf("stream: delta payload short of %d bin symbols: %w",
				vol-i, ErrCorrupt)
		}
		sym := syms[si]
		si++
		if sym > maxBin {
			return fmt.Errorf("stream: bin symbol %d outside radius %d: %w",
				sym, r.h.radius, ErrCorrupt)
		}
		if sym == 0 {
			if li >= len(lits) {
				return fmt.Errorf("stream: delta payload short of literals: %w", ErrCorrupt)
			}
			out[i] = lits[li]
			li++
			continue
		}
		out[i] = float32(q.Recover(float64(r.cur[i]), int32(sym), 0))
	}
	if si != len(syms) || li != len(lits) {
		return fmt.Errorf("stream: %d bin / %d literal symbols left over: %w",
			len(syms)-si, len(lits)-li, ErrCorrupt)
	}
	r.alt = r.cur
	r.cur = out
	return nil
}

// readDeltaSection reads one length-prefixed section of a delta payload.
func readDeltaSection(payload []byte, pos *int) ([]byte, error) {
	l, err := readUvarint(payload, pos)
	if err != nil {
		return nil, fmt.Errorf("stream: bad delta section length: %w", ErrCorrupt)
	}
	if l > uint64(len(payload)-*pos) {
		return nil, fmt.Errorf("stream: delta section truncated: %w", ErrCorrupt)
	}
	out := payload[*pos : *pos+int(l)]
	*pos += int(l)
	return out, nil
}

// newQuantizer rebuilds the writer's quantizer from the stream header; the
// Recover arithmetic must match Quantize bit for bit, which quant guarantees
// for equal (eb, radius).
func newQuantizer(h streamHeader) quant.Quantizer {
	return quant.New(h.eb, h.radius)
}

// corruptDecode lossless-decodes a section, classifying failure as stream
// corruption.
func corruptDecode(sec []byte) ([]byte, error) {
	out, err := lossless.Decode(sec)
	if err != nil {
		return nil, corrupt(err)
	}
	return out, nil
}

// decodeBins entropy-decodes a bin-symbol block; the entropy layer rejects
// declared symbol counts beyond maxSyms before allocating.
func decodeBins(raw []byte, workers, maxSyms int) ([]uint32, error) {
	syms, err := entropy.DecodeBlockBounded(raw, workers, maxSyms)
	if err != nil {
		return nil, corrupt(err)
	}
	return syms, nil
}

func dimsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
