package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"cliz/internal/core"
	"cliz/internal/entropy"
	"cliz/internal/mask"
)

// makeFrames synthesizes n smoothly-evolving frames over an nLat×nLon grid:
// a fixed spatial pattern plus a slow drift and AR(1) temporal noise, so
// delta coding has something realistic to chew on.
func makeFrames(n, nLat, nLon int, seed int64, corr, noiseAmp float64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	plane := nLat * nLon
	base := make([]float64, plane)
	for i := 0; i < nLat; i++ {
		for j := 0; j < nLon; j++ {
			base[i*nLon+j] = 40*math.Sin(5*float64(i)/float64(nLat)) +
				25*math.Cos(7*float64(j)/float64(nLon))
		}
	}
	noise := make([]float64, plane)
	for p := range noise {
		noise[p] = rng.NormFloat64()
	}
	frames := make([][]float32, n)
	mix := math.Sqrt(1 - corr*corr)
	for t := range frames {
		f := make([]float32, plane)
		drift := 3 * float64(t) / float64(n)
		for p := range f {
			if t > 0 {
				noise[p] = corr*noise[p] + mix*rng.NormFloat64()
			}
			f[p] = float32(base[p] + drift + noiseAmp*noise[p])
		}
		frames[t] = f
	}
	return frames
}

// writeStream appends every frame and returns the stream bytes plus the
// per-frame infos.
func writeStream(t *testing.T, cfg Config, frames [][]float32) ([]byte, []FrameInfo) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, cfg)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	infos := make([]FrameInfo, 0, len(frames))
	for i, f := range frames {
		info, err := w.Append(f)
		if err != nil {
			t.Fatalf("Append frame %d: %v", i, err)
		}
		infos = append(infos, info)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), infos
}

// readAll sequentially decodes every frame.
func readAll(t *testing.T, blob []byte, opt core.DecompressOptions) [][]float32 {
	t.Helper()
	r, err := Parse(blob, opt)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var out [][]float32
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", len(out), err)
		}
		out = append(out, f)
	}
	return out
}

func maxAbsErr(orig, recon []float32, valid []bool) float64 {
	worst := 0.0
	for i := range orig {
		if valid != nil && !valid[i] {
			continue
		}
		o, r := float64(orig[i]), float64(recon[i])
		if math.IsNaN(o) || math.IsInf(o, 0) {
			continue
		}
		if d := math.Abs(o - r); d > worst {
			worst = d
		}
	}
	return worst
}

func TestRoundTripBoundEveryFrame(t *testing.T) {
	const eb = 1e-2
	frames := makeFrames(40, 24, 32, 1, 0.95, 0.5)
	blob, infos := writeStream(t, Config{Dims: []int{24, 32}, EB: eb, Interval: 8}, frames)
	got := readAll(t, blob, core.DecompressOptions{})
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if err := maxAbsErr(frames[i], got[i], nil); err > eb {
			t.Errorf("frame %d: max error %g > bound %g", i, err, eb)
		}
	}
	// The keyframe cadence must hold: frame 0, 8, 16, ... are keyframes.
	for _, info := range infos {
		if (info.Index%8 == 0) != (info.Kind == KindKey) {
			t.Errorf("frame %d has kind %v under interval 8", info.Index, info.Kind)
		}
	}
}

func TestDeltaFramesActuallyUsed(t *testing.T) {
	frames := makeFrames(20, 24, 24, 2, 0.98, 0.2)
	_, infos := writeStream(t, Config{Dims: []int{24, 24}, EB: 1e-2, Interval: 10}, frames)
	deltas := 0
	for _, info := range infos {
		if info.Kind == KindDelta {
			deltas++
		}
	}
	if deltas < 15 {
		t.Fatalf("only %d/20 delta frames on a smoothly-evolving stream", deltas)
	}
}

func TestMaskedStream(t *testing.T) {
	const nLat, nLon, eb = 16, 20, 5e-3
	regions := make([]int32, nLat*nLon)
	for i := range regions {
		if (i/nLon+i%nLon)%3 != 0 {
			regions[i] = 1
		}
	}
	m := mask.New(nLat, nLon, regions)
	const fill float32 = 9.96921e36
	frames := makeFrames(12, nLat, nLon, 3, 0.9, 0.3)
	for _, f := range frames {
		for i, r := range regions {
			if r == 0 {
				f[i] = fill
			}
		}
	}
	blob, _ := writeStream(t, Config{
		Dims: []int{nLat, nLon}, Mask: m, Fill: fill, EB: eb, Interval: 4,
	}, frames)
	got := readAll(t, blob, core.DecompressOptions{})
	valid := make([]bool, nLat*nLon)
	for i, r := range regions {
		valid[i] = r != 0
	}
	for i := range frames {
		if err := maxAbsErr(frames[i], got[i], valid); err > eb {
			t.Errorf("frame %d: max error %g > bound %g", i, err, eb)
		}
		for p, ok := range valid {
			if !ok && got[i][p] != fill {
				t.Fatalf("frame %d point %d: masked point holds %g, want fill", i, p, got[i][p])
			}
		}
	}
}

func TestNonFiniteLiteralsSurvive(t *testing.T) {
	frames := makeFrames(6, 12, 12, 4, 0.9, 0.2)
	frames[3][17] = float32(math.NaN())
	frames[3][40] = float32(math.Inf(1))
	frames[4][40] = float32(math.Inf(-1))
	blob, _ := writeStream(t, Config{Dims: []int{12, 12}, EB: 1e-3, Interval: 16}, frames)
	got := readAll(t, blob, core.DecompressOptions{})
	if !math.IsNaN(float64(got[3][17])) {
		t.Errorf("frame 3: NaN not preserved, got %g", got[3][17])
	}
	if !math.IsInf(float64(got[3][40]), 1) || !math.IsInf(float64(got[4][40]), -1) {
		t.Errorf("Inf literals not preserved: %g, %g", got[3][40], got[4][40])
	}
	// The frame after a non-finite point must still satisfy the bound: the
	// NaN predecessor demotes that point to a literal, not to garbage.
	if err := maxAbsErr(frames[5], got[5], nil); err > 1e-3 {
		t.Errorf("frame 5 after non-finite points: max error %g", err)
	}
}

func TestIntraFallbackOnQuantizerUnderflow(t *testing.T) {
	// Frame 1 sits ~2000 below frame 0: the temporal delta divided by 2·eb
	// underflows the quantizer range at every point, so every point becomes
	// a literal and the writer must fall back to intra-frame mode instead of
	// paying 4 bytes/point — and the bound must hold regardless.
	const nLat, nLon, eb = 24, 24, 1e-3
	plane := nLat * nLon
	f0 := make([]float32, plane)
	f1 := make([]float32, plane)
	for i := range f0 {
		ripple := 0.3 * math.Sin(float64(i)/7)
		f0[i] = float32(1000 + ripple)
		f1[i] = float32(-1000 + 0.2*math.Cos(float64(i)/5) + ripple)
	}
	blob, infos := writeStream(t, Config{Dims: []int{nLat, nLon}, EB: eb, Interval: 16},
		[][]float32{f0, f1})
	if infos[1].Kind != KindIntra {
		t.Fatalf("frame 1 kind = %v, want intra fallback", infos[1].Kind)
	}
	got := readAll(t, blob, core.DecompressOptions{})
	if err := maxAbsErr(f1, got[1], nil); err > eb {
		t.Errorf("fallback frame: max error %g > bound %g", err, eb)
	}
}

func TestSeekMatchesSequential(t *testing.T) {
	frames := makeFrames(30, 16, 16, 5, 0.95, 0.4)
	for _, interval := range []int{1, 4, 16} {
		blob, _ := writeStream(t, Config{Dims: []int{16, 16}, EB: 1e-2, Interval: interval}, frames)
		seq := readAll(t, blob, core.DecompressOptions{})
		r, err := Parse(blob, core.DecompressOptions{})
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		rng := rand.New(rand.NewSource(int64(interval)))
		for k := 0; k < 25; k++ {
			target := rng.Intn(len(frames))
			if err := r.Seek(target); err != nil {
				t.Fatalf("interval %d: Seek(%d): %v", interval, target, err)
			}
			got, err := r.ReadFrame()
			if err != nil {
				t.Fatalf("interval %d: ReadFrame(%d): %v", interval, target, err)
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(seq[target][i]) {
					t.Fatalf("interval %d: frame %d point %d: seek %g != sequential %g",
						interval, target, i, got[i], seq[target][i])
				}
			}
		}
	}
}

func TestDecodeWorkerIndependence(t *testing.T) {
	frames := makeFrames(10, 20, 20, 6, 0.9, 0.3)
	blob, _ := writeStream(t, Config{
		Dims: []int{20, 20}, EB: 1e-2, Interval: 4,
		Opts: core.Options{Workers: 3, Entropy: entropy.RANSInterleaved},
	}, frames)
	one := readAll(t, blob, core.DecompressOptions{Workers: 1})
	many := readAll(t, blob, core.DecompressOptions{Workers: 4})
	for i := range one {
		for p := range one[i] {
			if math.Float32bits(one[i][p]) != math.Float32bits(many[i][p]) {
				t.Fatalf("frame %d point %d differs across decode worker counts", i, p)
			}
		}
	}
}

func TestWriterDeterminism(t *testing.T) {
	frames := makeFrames(8, 16, 16, 7, 0.9, 0.3)
	a, _ := writeStream(t, Config{Dims: []int{16, 16}, EB: 1e-2, Interval: 4}, frames)
	b, _ := writeStream(t, Config{Dims: []int{16, 16}, EB: 1e-2, Interval: 4}, frames)
	if !bytes.Equal(a, b) {
		t.Fatal("identical inputs produced different streams")
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{Dims: []int{8, 8}, EB: 1e-2})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Parse(buf.Bytes(), core.DecompressOptions{})
	if err != nil {
		t.Fatalf("Parse of empty stream: %v", err)
	}
	if r.Frames() != 0 {
		t.Fatalf("empty stream has %d frames", r.Frames())
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("ReadFrame on empty stream: %v, want io.EOF", err)
	}
	if err := r.Seek(0); err == nil {
		t.Fatal("Seek(0) on empty stream succeeded")
	}
}

func TestAppendRejectsWrongLength(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{Dims: []int{8, 8}, EB: 1e-2})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := w.Append(make([]float32, 63)); err == nil {
		t.Fatal("Append with wrong frame length succeeded")
	}
}

func TestTruncationIsCleanCorruption(t *testing.T) {
	frames := makeFrames(10, 16, 16, 8, 0.9, 0.3)
	blob, _ := writeStream(t, Config{Dims: []int{16, 16}, EB: 1e-2, Interval: 4}, frames)
	// Mid-record truncations must fail Parse with ErrCorrupt; header-level
	// truncations likewise. Record-boundary truncation is NOT corruption
	// (an append stream's valid shorter prefix) and is covered below.
	for _, n := range []int{1, 4, 9, 17, len(blob) / 3, len(blob) - 1} {
		r, err := Parse(blob[:n], core.DecompressOptions{})
		if err == nil {
			// A cut can land exactly on a record boundary; then the prefix
			// must simply be a shorter valid stream.
			for {
				if _, err := r.ReadFrame(); err == io.EOF {
					break
				} else if err != nil {
					t.Fatalf("truncate %d: decode of boundary prefix: %v", n, err)
				}
			}
			continue
		}
		if !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("truncate %d: error %v does not wrap core.ErrCorrupt", n, err)
		}
	}
	// A prefix ending exactly after frame 5's record decodes 6 frames.
	r0, err := Parse(blob, core.DecompressOptions{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rec, err := r0.Record(5)
	if err != nil {
		t.Fatalf("Record(5): %v", err)
	}
	cut := rec.PayloadOffset + rec.PayloadLen
	r, err := Parse(blob[:cut], core.DecompressOptions{})
	if err != nil {
		t.Fatalf("Parse of record-boundary prefix: %v", err)
	}
	if r.Frames() != 6 {
		t.Fatalf("boundary prefix has %d frames, want 6", r.Frames())
	}
}

func TestPayloadFlipIsAttributedFrameError(t *testing.T) {
	frames := makeFrames(12, 16, 16, 9, 0.9, 0.3)
	blob, _ := writeStream(t, Config{Dims: []int{16, 16}, EB: 1e-2, Interval: 4}, frames)
	r, err := Parse(blob, core.DecompressOptions{})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, target := range []int{0, 5, 11} {
		rec, err := r.Record(target)
		if err != nil {
			t.Fatalf("Record(%d): %v", target, err)
		}
		bad := append([]byte(nil), blob...)
		bad[rec.PayloadOffset+rec.PayloadLen/2] ^= 0x40
		rb, err := Parse(bad, core.DecompressOptions{})
		if err != nil {
			t.Fatalf("Parse of payload-flipped stream: %v", err)
		}
		if err := rb.Seek(target); err != nil {
			t.Fatalf("Seek(%d): %v", target, err)
		}
		_, err = rb.ReadFrame()
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("frame %d flip: error %v is not a FrameError", target, err)
		}
		if fe.Frame != target {
			t.Errorf("flip in frame %d attributed to frame %d", target, fe.Frame)
		}
		if !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("frame %d flip: error %v does not wrap core.ErrCorrupt", target, err)
		}
		// Undamaged frames before the flip still decode.
		if target > 0 {
			if err := rb.Seek(target - 1); err != nil {
				t.Fatalf("Seek(%d): %v", target-1, err)
			}
			if _, err := rb.ReadFrame(); err != nil {
				t.Errorf("undamaged frame %d fails after flip in %d: %v", target-1, target, err)
			}
		}
	}
}

func TestHeaderFlipRejected(t *testing.T) {
	frames := makeFrames(4, 12, 12, 10, 0.9, 0.3)
	blob, _ := writeStream(t, Config{Dims: []int{12, 12}, EB: 1e-2, Interval: 2}, frames)
	for _, off := range []int{5, 6, 10, 15} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x01
		if _, err := Parse(bad, core.DecompressOptions{}); !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("header flip at %d: error %v does not wrap core.ErrCorrupt", off, err)
		}
	}
}

func TestInterruptStopsAppend(t *testing.T) {
	stop := errors.New("deadline")
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{
		Dims: []int{8, 8}, EB: 1e-2,
		Opts: core.Options{Interrupt: func() error { return stop }},
	})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if _, err := w.Append(make([]float32, 64)); !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("Append under interrupt: %v", err)
	}
}
