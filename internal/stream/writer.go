package stream

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"cliz/internal/core"
	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/lossless"
	"cliz/internal/mask"
	"cliz/internal/quant"
)

// DefaultKeyframeInterval is the keyframe spacing when Config.Interval is 0:
// every 16th frame is independently decodable, so Seek replays at most 15
// delta frames.
const DefaultKeyframeInterval = 16

// Config parameterizes a stream writer.
type Config struct {
	// Name labels the frame datasets (trace and error messages only).
	Name string
	// Dims are the per-frame extents (rank 1..4).
	Dims []int
	// Mask is the optional horizontal mask over the frame's trailing two
	// dims; masked points carry Fill and are not encoded.
	Mask *mask.Map
	// Fill is the sentinel stored at masked points.
	Fill float32
	// EB is the absolute error bound every frame's reconstruction satisfies.
	EB float64
	// Interval is the keyframe interval (every Interval-th frame is a
	// keyframe); 0 selects DefaultKeyframeInterval, 1 makes every frame a
	// keyframe.
	Interval int
	// Pipe is the intra-frame pipeline for key/intra frames; nil selects the
	// default. Period and Template are forced off (frames have no interior
	// time axis) and UseMask follows Mask.
	Pipe *core.Pipeline
	// Opts carries the shared implementation knobs: workers, entropy kind,
	// quantizer radius, lossless backend, trace, interrupt.
	Opts core.Options
}

// FrameInfo reports what one Append wrote.
type FrameInfo struct {
	// Index is the frame's position in the stream.
	Index int
	// Kind says how the frame was coded.
	Kind Kind
	// PayloadBytes is the compressed payload size.
	PayloadBytes int
	// RecordBytes is the full record size (header + payload).
	RecordBytes int
	// Offset is the record's byte offset in the stream.
	Offset int
}

// Writer appends error-bounded frames to an io.Writer. Frames arrive one
// timestep at a time; every Interval-th frame is a keyframe, the rest are
// delta-coded against the previous frame's reconstruction unless the
// temporal residual loses to intra-frame prediction.
type Writer struct {
	w   io.Writer
	cfg Config
	q   quant.Quantizer
	// pipe is the resolved intra-frame pipeline.
	pipe core.Pipeline
	// valid is the broadcast per-point validity (nil when unmasked).
	valid      []bool
	validCount int
	// prev holds the reconstruction of the last appended frame — exactly
	// the state the decoder holds after reading it.
	prev    []float32
	scratch []float32
	// lastIntraBytes is the payload size of the last key/intra frame: the
	// baseline the delta-fallback heuristic compares against.
	lastIntraBytes int
	n              int
	off            int
	lastSyncOff    int
	err            error
	closed         bool
}

// NewWriter validates the configuration, writes the stream header to w and
// returns a Writer ready for Append. The header is written eagerly so a
// stream with zero frames is still a parseable (empty) stream.
func NewWriter(w io.Writer, cfg Config) (*Writer, error) {
	if w == nil {
		return nil, errors.New("stream: nil writer")
	}
	if len(cfg.Dims) < 1 || len(cfg.Dims) > maxStreamRank {
		return nil, fmt.Errorf("stream: frame rank %d not in 1..%d", len(cfg.Dims), maxStreamRank)
	}
	vol := 1
	for _, d := range cfg.Dims {
		if d < 1 {
			return nil, fmt.Errorf("stream: non-positive frame extent in %v", cfg.Dims)
		}
		if d > maxFrameVolume/vol {
			return nil, fmt.Errorf("stream: frame volume of %v exceeds cap %d", cfg.Dims, maxFrameVolume)
		}
		vol *= d
	}
	if cfg.EB <= 0 || cfg.EB != cfg.EB || cfg.EB > 1e308 {
		return nil, fmt.Errorf("stream: error bound must be positive and finite, got %g", cfg.EB)
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultKeyframeInterval
	}
	if cfg.Interval < 1 || cfg.Interval > maxInterval {
		return nil, fmt.Errorf("stream: keyframe interval %d not in 1..%d", cfg.Interval, maxInterval)
	}
	radius := cfg.Opts.Radius
	if radius == 0 {
		radius = quant.DefaultRadius
	}
	sw := &Writer{
		w:   w,
		cfg: cfg,
		q:   quant.New(cfg.EB, radius),
	}
	if cfg.Mask != nil {
		if len(cfg.Dims) < 2 {
			return nil, errors.New("stream: mask requires frame rank >= 2")
		}
		valid, err := cfg.Mask.Broadcast(cfg.Dims)
		if err != nil {
			return nil, err
		}
		sw.valid = valid
		for _, ok := range valid {
			if ok {
				sw.validCount++
			}
		}
	} else {
		sw.validCount = vol
	}
	// Resolve the intra-frame pipeline once; every key/intra frame reuses it.
	if cfg.Pipe != nil {
		sw.pipe = *cfg.Pipe
	} else {
		sw.pipe = core.Default(sw.frameDataset(make([]float32, vol)))
	}
	sw.pipe.Period = 0
	sw.pipe.Template = nil
	sw.pipe.UseMask = cfg.Mask != nil
	if err := sw.pipe.Validate(len(cfg.Dims)); err != nil {
		return nil, err
	}
	h := streamHeader{
		eb:       cfg.EB,
		fill:     cfg.Fill,
		radius:   radius,
		dims:     cfg.Dims,
		interval: cfg.Interval,
		mask:     cfg.Mask,
	}
	if cfg.Mask != nil {
		h.flags |= flagStreamMask
	}
	hdr := encodeStreamHeader(h)
	if _, err := w.Write(hdr); err != nil {
		sw.err = err
		return nil, err
	}
	sw.off = len(hdr)
	sw.lastSyncOff = -1
	return sw, nil
}

// Frames returns the number of frames appended so far.
func (w *Writer) Frames() int { return w.n }

// frameDataset wraps one frame as a core dataset for intra compression.
func (w *Writer) frameDataset(frame []float32) *dataset.Dataset {
	name := w.cfg.Name
	if name == "" {
		name = "stream-frame"
	}
	return &dataset.Dataset{
		Name:      name,
		Data:      frame,
		Dims:      w.cfg.Dims,
		Mask:      w.cfg.Mask,
		FillValue: w.cfg.Fill,
	}
}

// interrupted polls the configured Interrupt hook at frame boundaries.
func (w *Writer) interrupted() error {
	if w.cfg.Opts.Interrupt == nil {
		return nil
	}
	if err := w.cfg.Opts.Interrupt(); err != nil {
		return fmt.Errorf("%w: %w", core.ErrInterrupted, err)
	}
	return nil
}

// Append compresses one frame and writes its record. The frame slice is not
// retained. Any write or encode error is sticky: the Writer refuses further
// appends, because a half-written record leaves the stream tail unusable.
func (w *Writer) Append(frame []float32) (FrameInfo, error) {
	if w.err != nil {
		return FrameInfo{}, w.err
	}
	if w.closed {
		return FrameInfo{}, errors.New("stream: append after Close")
	}
	if err := w.interrupted(); err != nil {
		return FrameInfo{}, err
	}
	vol := 1
	for _, d := range w.cfg.Dims {
		vol *= d
	}
	if len(frame) != vol {
		return FrameInfo{}, fmt.Errorf("stream: frame has %d points, want %d", len(frame), vol)
	}

	kind := KindDelta
	var payload []byte
	var recon []float32
	if w.n%w.cfg.Interval == 0 {
		kind = KindKey
		var err error
		payload, recon, err = w.encodeIntra(frame)
		if err != nil {
			w.err = err
			return FrameInfo{}, err
		}
	} else {
		var lits int
		var err error
		payload, recon, lits, err = w.encodeDelta(frame)
		if err != nil {
			w.err = err
			return FrameInfo{}, err
		}
		// Fallback: when the temporal residual lost — many unpredictable
		// points (the residual left the quantizer range) or a payload close
		// to the last intra-coded frame's — try intra-frame prediction and
		// keep the smaller encoding. Intra frames double as sync points.
		tryIntra := 8*lits >= w.validCount ||
			(w.lastIntraBytes > 0 && 4*len(payload) >= 3*w.lastIntraBytes)
		if tryIntra {
			ipay, irecon, err := w.encodeIntra(frame)
			if err != nil {
				w.err = err
				return FrameInfo{}, err
			}
			if len(ipay) < len(payload) {
				kind = KindIntra
				payload, recon = ipay, irecon
			}
		}
	}

	syncOff := w.lastSyncOff
	if kind.Sync() {
		syncOff = w.off
	}
	hdr := appendRecordHeader(nil, kind, w.n, syncOff, len(payload),
		crc32.Checksum(payload, crcTable))
	if _, err := w.w.Write(hdr); err != nil {
		w.err = err
		return FrameInfo{}, err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
		return FrameInfo{}, err
	}
	info := FrameInfo{
		Index:        w.n,
		Kind:         kind,
		PayloadBytes: len(payload),
		RecordBytes:  len(hdr) + len(payload),
		Offset:       w.off,
	}
	if kind.Sync() {
		w.lastSyncOff = w.off
		w.lastIntraBytes = len(payload)
	}
	w.off += info.RecordBytes
	w.prev = recon
	w.n++
	return info, nil
}

// Close marks the stream complete. The format has no footer (a prefix of a
// stream is a valid stream), so Close only blocks further appends.
func (w *Writer) Close() error {
	w.closed = true
	return w.err
}

// encodeIntra compresses the frame as an independent CliZ blob and returns
// the payload plus the decoder-identical reconstruction.
func (w *Writer) encodeIntra(frame []float32) ([]byte, []float32, error) {
	return core.CompressWithRecon(w.frameDataset(frame), w.cfg.EB, w.pipe, w.cfg.Opts)
}

// encodeDelta quantizes every valid point against the previous frame's
// reconstruction. It returns the payload, the new reconstruction and the
// literal (unpredictable-point) count that feeds the fallback heuristic.
func (w *Writer) encodeDelta(frame []float32) ([]byte, []float32, int, error) {
	if len(w.prev) != len(frame) {
		return nil, nil, 0, errors.New("stream: delta frame without a predecessor")
	}
	recon := w.scratch
	if len(recon) != len(frame) {
		recon = make([]float32, len(frame))
	}
	w.scratch = w.prev // recycle the retiring buffer next Append
	syms := make([]uint32, 0, w.validCount)
	var lits []float32
	for i, orig := range frame {
		// Cancellation must reach a delta encode mid-frame: one frame can be
		// hundreds of MiB, far past the frame-boundary poll in Append.
		if i&0xffff == 0 {
			if err := w.interrupted(); err != nil {
				return nil, nil, 0, err
			}
		}
		if w.valid != nil && !w.valid[i] {
			recon[i] = w.cfg.Fill
			continue
		}
		bin, rv, exact := w.q.Quantize(float64(w.prev[i]), float64(orig))
		if exact {
			syms = append(syms, 0)
			lits = append(lits, orig)
			recon[i] = orig
			continue
		}
		syms = append(syms, uint32(bin))
		recon[i] = float32(rv)
	}
	be := w.cfg.Opts.Backend
	if be == nil {
		be = lossless.Flate{Level: 6}
	}
	workers := w.cfg.Opts.Workers
	if workers < 1 {
		workers = 1
	}
	binsSec := lossless.Encode(be, entropy.EncodeBlockSharded(w.cfg.Opts.Entropy, syms, workers))
	litSec := lossless.Encode(be, float32sToBytes(lits))
	payload := make([]byte, 0, len(binsSec)+len(litSec)+2*10)
	payload = appendUvarint(payload, uint64(len(binsSec)))
	payload = append(payload, binsSec...)
	payload = appendUvarint(payload, uint64(len(litSec)))
	payload = append(payload, litSec...)
	return payload, recon, len(lits), nil
}
