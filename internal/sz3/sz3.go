// Package sz3 reimplements the SZ3 error-bounded lossy compressor
// (Zhao et al., ICDE 2021 — "dynamic spline interpolation"), the framework
// CliZ builds on and its primary comparator in the paper's evaluation.
//
// SZ3 is exactly the CliZ pipeline minus the four climate-specific
// optimizations: no mask awareness (fill values enter prediction, which is
// why SZ3 collapses on masked ocean/land fields — paper §V-A), no dimension
// permutation or fusion (natural order), no periodic extraction, and a
// single Huffman tree. Like the original, it picks linear vs cubic fitting
// by compressing a small sample with both.
package sz3

import (
	"cliz/internal/codec"
	"cliz/internal/core"
	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/predict"
)

// Compressor implements codec.Compressor.
type Compressor struct{}

func init() { codec.Register(Compressor{}) }

// Name implements codec.Compressor.
func (Compressor) Name() string { return "SZ3" }

// pipeline builds SZ3's fixed configuration for a dataset rank.
func pipeline(rank int, fit predict.Fitting) core.Pipeline {
	perm := make([]int, rank)
	for i := range perm {
		perm[i] = i
	}
	return core.Pipeline{
		Perm:    perm,
		Fusion:  grid.NoFusion(rank),
		Fitting: fit,
	}
}

// SelectFitting mimics SZ3's internal interpolation-algorithm selection:
// both fittings are tried on a ~1% sample and the smaller output wins.
func SelectFitting(ds *dataset.Dataset, eb float64) predict.Fitting {
	blocks := grid.SampleBlocks(ds.Dims, 0.01, 4)
	sample, sdims := grid.ConcatBlocks(ds.Data, ds.Dims, blocks)
	if len(sample) == 0 {
		return predict.Cubic
	}
	sub := &dataset.Dataset{Name: ds.Name + "-fitprobe", Data: sample, Dims: sdims}
	best := predict.Cubic
	bestLen := -1
	for _, fit := range []predict.Fitting{predict.Linear, predict.Cubic} {
		blob, err := core.Compress(sub, eb, pipeline(len(sdims), fit), core.Options{})
		if err != nil {
			continue
		}
		if bestLen < 0 || len(blob) < bestLen {
			best = fit
			bestLen = len(blob)
		}
	}
	return best
}

// Compress implements codec.Compressor. The mask and periodicity metadata
// are deliberately ignored — SZ3 is a general-purpose compressor.
func (Compressor) Compress(ds *dataset.Dataset, eb float64) ([]byte, error) {
	plain := *ds
	plain.Mask = nil
	plain.Periodic = false
	fit := SelectFitting(&plain, eb)
	return core.Compress(&plain, eb, pipeline(len(ds.Dims), fit), core.Options{})
}

// Decompress implements codec.Compressor.
func (Compressor) Decompress(blob []byte) ([]float32, []int, error) {
	return core.Decompress(blob)
}
