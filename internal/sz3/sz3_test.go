package sz3

import (
	"testing"

	"cliz/internal/datagen"
	"cliz/internal/stats"
)

func TestRoundTripErrorBound(t *testing.T) {
	var c Compressor
	for _, name := range []string{"Hurricane-T", "SSH"} {
		ds, err := datagen.ByName(name, 0.06)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range []float64{1e-1, 1e-3} {
			eb := ds.AbsErrorBound(rel)
			blob, err := c.Compress(ds, eb)
			if err != nil {
				t.Fatal(err)
			}
			got, dims, err := c.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(dims) != len(ds.Dims) {
				t.Fatalf("dims %v", dims)
			}
			// SZ3 bounds the error on EVERY point, including fills.
			if e := stats.MaxAbsErr(ds.Data, got, nil); e > eb*(1+1e-9) {
				t.Fatalf("%s rel %g: max error %g > %g", name, rel, e, eb)
			}
		}
	}
}

func TestIgnoresMaskAndPeriod(t *testing.T) {
	// SZ3 must produce identical output whether or not the dataset carries
	// mask/periodicity metadata — it is a general-purpose compressor.
	var c Compressor
	ds := datagen.SSH(0.06)
	eb := ds.AbsErrorBound(1e-2)
	a, err := c.Compress(ds, eb)
	if err != nil {
		t.Fatal(err)
	}
	stripped := ds.Clone()
	stripped.Mask = nil
	stripped.Periodic = false
	b, err := c.Compress(stripped, eb)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("metadata leaked into SZ3: %d vs %d bytes", len(a), len(b))
	}
}

func TestFittingSelectionRuns(t *testing.T) {
	ds := datagen.HurricaneT(0.05)
	fit := SelectFitting(ds, ds.AbsErrorBound(1e-3))
	_ = fit // either choice is valid; just must not panic and be stable
	if fit != SelectFitting(ds, ds.AbsErrorBound(1e-3)) {
		t.Fatal("fitting selection not deterministic")
	}
}

func TestName(t *testing.T) {
	if (Compressor{}).Name() != "SZ3" {
		t.Fatal("name")
	}
}
