// Package trace is the observability layer of the compression pipeline: a
// lightweight, allocation-conscious collector of per-stage records (wall
// time, byte counts, item counts and free-form numeric annotations) that the
// core compressor threads through every stage when — and only when — a
// collector is attached. With a nil collector every hook is a no-op that
// performs zero allocations and never reads the clock, so the hot path pays
// nothing for the instrumentation it does not use.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage is one record: a named unit of pipeline work with its cost.
type Stage struct {
	// Name identifies the stage. Nested work is path-qualified with '/',
	// e.g. "template/predict" or "chunk[3]/entropy".
	Name string
	// Duration is the stage's wall time (0 for pure bookkeeping records).
	Duration time.Duration
	// InBytes / OutBytes are the stage's input and output sizes where
	// meaningful (0 otherwise). For coding stages Out < In is the win.
	InBytes  int64
	OutBytes int64
	// Items counts the units processed (points, symbols, chunks...).
	Items int64
	// Extra holds stage-specific numeric annotations (histogram entropy,
	// Huffman table bytes, literal counts...). Nil for most stages.
	Extra []KV
}

// KV is one numeric annotation.
type KV struct {
	Key   string
	Value float64
}

// Collector receives stage records. Implementations must be safe for
// concurrent use: the parallel chunked compressor records from many
// goroutines at once.
type Collector interface {
	Record(s Stage)
}

// Recorder is the standard Collector: a mutex-guarded, append-only list of
// stage records.
type Recorder struct {
	mu     sync.Mutex
	stages []Stage
}

// Record implements Collector. The Extra annotations are copied, not
// retained: a recorded Stage must stay readable by concurrent Stages()
// snapshots even after the producer reuses its scratch KV buffer — the
// pattern a long-lived per-worker trace in a server falls into. Retaining
// the caller's slice here is a data race the moment the caller recycles it
// (caught by TestRecorderScratchReuseRace under -race).
func (r *Recorder) Record(s Stage) {
	if len(s.Extra) > 0 {
		s.Extra = append([]KV(nil), s.Extra...)
	}
	r.mu.Lock()
	r.stages = append(r.stages, s)
	r.mu.Unlock()
}

// Stages returns a copy of the records in arrival order.
func (r *Recorder) Stages() []Stage {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Stage(nil), r.stages...)
}

// Reset clears the records so the recorder can be reused.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.stages = r.stages[:0]
	r.mu.Unlock()
}

// Aggregate merges records whose names share the same base stage (the path
// component after the last '/'), summing durations, bytes and items. The
// result is ordered by descending duration — the profile view.
func (r *Recorder) Aggregate() []Stage {
	return Aggregate(r.Stages())
}

// Aggregate merges stages by base name (see Recorder.Aggregate).
func Aggregate(stages []Stage) []Stage {
	idx := map[string]int{}
	var out []Stage
	for _, s := range stages {
		base := s.Name
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		j, ok := idx[base]
		if !ok {
			idx[base] = len(out)
			out = append(out, Stage{Name: base, Duration: s.Duration,
				InBytes: s.InBytes, OutBytes: s.OutBytes, Items: s.Items})
			continue
		}
		out[j].Duration += s.Duration
		out[j].InBytes += s.InBytes
		out[j].OutBytes += s.OutBytes
		out[j].Items += s.Items
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Table renders the raw records as a human-readable stage table.
func (r *Recorder) Table() string { return Table(r.Stages()) }

// Table renders stage records as an aligned text table. Records named
// "total" (or ending in "/total") are separated from the per-stage rows.
func Table(stages []Stage) string {
	if len(stages) == 0 {
		return "(no stages recorded)\n"
	}
	// The % column denominator: the recorded totals when the stages nest
	// under them, otherwise the stage sum (tuning spans run outside the
	// compression total, so the sum can exceed it).
	var total, sum time.Duration
	for _, s := range stages {
		if isTotal(s.Name) {
			total += s.Duration
		} else {
			sum += s.Duration
		}
	}
	if sum > total {
		total = sum
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %6s %12s %12s %10s  %s\n",
		"stage", "time", "%", "in", "out", "items", "notes")
	for _, s := range stages {
		pct := "-"
		if total > 0 && !isTotal(s.Name) {
			pct = fmt.Sprintf("%.1f", 100*float64(s.Duration)/float64(total))
		}
		fmt.Fprintf(&b, "%-28s %10s %6s %12s %12s %10s  %s\n",
			s.Name, fmtDuration(s.Duration), pct,
			fmtBytes(s.InBytes), fmtBytes(s.OutBytes), fmtCount(s.Items),
			fmtExtra(s.Extra))
	}
	return b.String()
}

func isTotal(name string) bool {
	return name == "total" || strings.HasSuffix(name, "/total")
}

func fmtDuration(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtBytes(n int64) string {
	switch {
	case n == 0:
		return "-"
	case n < 1024:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
}

func fmtCount(n int64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

func fmtExtra(kvs []KV) string {
	if len(kvs) == 0 {
		return ""
	}
	parts := make([]string, len(kvs))
	for i, kv := range kvs {
		parts[i] = fmt.Sprintf("%s=%.4g", kv.Key, kv.Value)
	}
	return strings.Join(parts, " ")
}

// maxAggStages bounds an Aggregator's distinct-stage table. Real pipelines
// produce a few dozen base names; anything past the cap (a runaway caller
// generating unique names) folds into a single "other" row so a long-lived
// process cannot leak memory through its metrics.
const maxAggStages = 256

// aggOverflow is the fold-in row for names past the maxAggStages cap.
const aggOverflow = "other"

// Aggregator is the Collector for long-lived processes: instead of the
// Recorder's append-only record list (which grows with every request, fine
// for a CLI run, fatal for a daemon), it merges records by base stage name
// as they arrive — O(distinct stages) memory forever. It is safe for
// concurrent use from any number of recording and reading goroutines; the
// zero value is ready to use.
type Aggregator struct {
	mu    sync.Mutex
	idx   map[string]int
	rows  []Stage
	hits  []int64
	count int64
}

// Record implements Collector: the stage folds into its base-name row.
// Extra annotations are dropped — per-record notes do not aggregate
// meaningfully across requests.
func (a *Aggregator) Record(s Stage) {
	base := s.Name
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.count++
	if a.idx == nil {
		a.idx = make(map[string]int)
	}
	j, ok := a.idx[base]
	if !ok {
		if len(a.rows) >= maxAggStages {
			if j, ok = a.idx[aggOverflow]; !ok {
				j = len(a.rows)
				a.idx[aggOverflow] = j
				a.rows = append(a.rows, Stage{Name: aggOverflow})
				a.hits = append(a.hits, 0)
			}
		} else {
			j = len(a.rows)
			a.idx[base] = j
			a.rows = append(a.rows, Stage{Name: base})
			a.hits = append(a.hits, 0)
		}
	}
	a.rows[j].Duration += s.Duration
	a.rows[j].InBytes += s.InBytes
	a.rows[j].OutBytes += s.OutBytes
	a.rows[j].Items += s.Items
	a.hits[j]++
}

// Count returns the total number of records folded in since the last Reset.
func (a *Aggregator) Count() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.count
}

// Snapshot returns the merged rows ordered by descending duration. Each
// row's Extra carries a single "records" annotation: how many raw records
// folded into it.
func (a *Aggregator) Snapshot() []Stage {
	a.mu.Lock()
	out := make([]Stage, len(a.rows))
	for i, r := range a.rows {
		out[i] = r
		out[i].Extra = []KV{{Key: "records", Value: float64(a.hits[i])}}
	}
	a.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Reset clears the merged rows so the aggregator can be reused.
func (a *Aggregator) Reset() {
	a.mu.Lock()
	a.idx = nil
	a.rows = nil
	a.hits = nil
	a.count = 0
	a.mu.Unlock()
}

// prefixed qualifies every record's name with a path prefix.
type prefixed struct {
	inner  Collector
	prefix string
}

func (p prefixed) Record(s Stage) {
	s.Name = p.prefix + "/" + s.Name
	p.inner.Record(s)
}

// Prefixed wraps c so every record is path-qualified with prefix. A nil c
// yields nil, keeping the no-collector fast path intact for nested stages.
func Prefixed(c Collector, prefix string) Collector {
	if c == nil {
		return nil
	}
	return prefixed{inner: c, prefix: prefix}
}

// Span measures one stage. The zero Span (from Begin with a nil collector)
// is inert: End and its variants return immediately without reading the
// clock or allocating.
type Span struct {
	c    Collector
	name string
	t0   time.Time
}

// Begin starts a span. With a nil collector it returns the zero Span and
// does not read the clock — the nil path is allocation-free (guarded by
// TestSpanNilCollectorAllocs).
func Begin(c Collector, name string) Span {
	if c == nil {
		return Span{}
	}
	return Span{c: c, name: name, t0: time.Now()}
}

// End records the span with no byte accounting.
func (sp Span) End() { sp.EndFull(0, 0, 0, nil) }

// EndBytes records the span with input/output byte counts.
func (sp Span) EndBytes(in, out int64) { sp.EndFull(in, out, 0, nil) }

// EndFull records the span with full accounting. Collectors copy what they
// keep, so the caller may reuse extra as scratch after EndFull returns.
func (sp Span) EndFull(in, out, items int64, extra []KV) {
	if sp.c == nil {
		return
	}
	sp.c.Record(Stage{
		Name:     sp.name,
		Duration: time.Since(sp.t0),
		InBytes:  in,
		OutBytes: out,
		Items:    items,
		Extra:    extra,
	})
}
