// Package trace is the observability layer of the compression pipeline: a
// lightweight, allocation-conscious collector of per-stage records (wall
// time, byte counts, item counts and free-form numeric annotations) that the
// core compressor threads through every stage when — and only when — a
// collector is attached. With a nil collector every hook is a no-op that
// performs zero allocations and never reads the clock, so the hot path pays
// nothing for the instrumentation it does not use.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stage is one record: a named unit of pipeline work with its cost.
type Stage struct {
	// Name identifies the stage. Nested work is path-qualified with '/',
	// e.g. "template/predict" or "chunk[3]/entropy".
	Name string
	// Duration is the stage's wall time (0 for pure bookkeeping records).
	Duration time.Duration
	// InBytes / OutBytes are the stage's input and output sizes where
	// meaningful (0 otherwise). For coding stages Out < In is the win.
	InBytes  int64
	OutBytes int64
	// Items counts the units processed (points, symbols, chunks...).
	Items int64
	// Extra holds stage-specific numeric annotations (histogram entropy,
	// Huffman table bytes, literal counts...). Nil for most stages.
	Extra []KV
}

// KV is one numeric annotation.
type KV struct {
	Key   string
	Value float64
}

// Collector receives stage records. Implementations must be safe for
// concurrent use: the parallel chunked compressor records from many
// goroutines at once.
type Collector interface {
	Record(s Stage)
}

// Recorder is the standard Collector: a mutex-guarded, append-only list of
// stage records.
type Recorder struct {
	mu     sync.Mutex
	stages []Stage
}

// Record implements Collector.
func (r *Recorder) Record(s Stage) {
	r.mu.Lock()
	r.stages = append(r.stages, s)
	r.mu.Unlock()
}

// Stages returns a copy of the records in arrival order.
func (r *Recorder) Stages() []Stage {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Stage(nil), r.stages...)
}

// Reset clears the records so the recorder can be reused.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.stages = r.stages[:0]
	r.mu.Unlock()
}

// Aggregate merges records whose names share the same base stage (the path
// component after the last '/'), summing durations, bytes and items. The
// result is ordered by descending duration — the profile view.
func (r *Recorder) Aggregate() []Stage {
	return Aggregate(r.Stages())
}

// Aggregate merges stages by base name (see Recorder.Aggregate).
func Aggregate(stages []Stage) []Stage {
	idx := map[string]int{}
	var out []Stage
	for _, s := range stages {
		base := s.Name
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		j, ok := idx[base]
		if !ok {
			idx[base] = len(out)
			out = append(out, Stage{Name: base, Duration: s.Duration,
				InBytes: s.InBytes, OutBytes: s.OutBytes, Items: s.Items})
			continue
		}
		out[j].Duration += s.Duration
		out[j].InBytes += s.InBytes
		out[j].OutBytes += s.OutBytes
		out[j].Items += s.Items
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Table renders the raw records as a human-readable stage table.
func (r *Recorder) Table() string { return Table(r.Stages()) }

// Table renders stage records as an aligned text table. Records named
// "total" (or ending in "/total") are separated from the per-stage rows.
func Table(stages []Stage) string {
	if len(stages) == 0 {
		return "(no stages recorded)\n"
	}
	// The % column denominator: the recorded totals when the stages nest
	// under them, otherwise the stage sum (tuning spans run outside the
	// compression total, so the sum can exceed it).
	var total, sum time.Duration
	for _, s := range stages {
		if isTotal(s.Name) {
			total += s.Duration
		} else {
			sum += s.Duration
		}
	}
	if sum > total {
		total = sum
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %6s %12s %12s %10s  %s\n",
		"stage", "time", "%", "in", "out", "items", "notes")
	for _, s := range stages {
		pct := "-"
		if total > 0 && !isTotal(s.Name) {
			pct = fmt.Sprintf("%.1f", 100*float64(s.Duration)/float64(total))
		}
		fmt.Fprintf(&b, "%-28s %10s %6s %12s %12s %10s  %s\n",
			s.Name, fmtDuration(s.Duration), pct,
			fmtBytes(s.InBytes), fmtBytes(s.OutBytes), fmtCount(s.Items),
			fmtExtra(s.Extra))
	}
	return b.String()
}

func isTotal(name string) bool {
	return name == "total" || strings.HasSuffix(name, "/total")
}

func fmtDuration(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmtBytes(n int64) string {
	switch {
	case n == 0:
		return "-"
	case n < 1024:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
}

func fmtCount(n int64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

func fmtExtra(kvs []KV) string {
	if len(kvs) == 0 {
		return ""
	}
	parts := make([]string, len(kvs))
	for i, kv := range kvs {
		parts[i] = fmt.Sprintf("%s=%.4g", kv.Key, kv.Value)
	}
	return strings.Join(parts, " ")
}

// prefixed qualifies every record's name with a path prefix.
type prefixed struct {
	inner  Collector
	prefix string
}

func (p prefixed) Record(s Stage) {
	s.Name = p.prefix + "/" + s.Name
	p.inner.Record(s)
}

// Prefixed wraps c so every record is path-qualified with prefix. A nil c
// yields nil, keeping the no-collector fast path intact for nested stages.
func Prefixed(c Collector, prefix string) Collector {
	if c == nil {
		return nil
	}
	return prefixed{inner: c, prefix: prefix}
}

// Span measures one stage. The zero Span (from Begin with a nil collector)
// is inert: End and its variants return immediately without reading the
// clock or allocating.
type Span struct {
	c    Collector
	name string
	t0   time.Time
}

// Begin starts a span. With a nil collector it returns the zero Span and
// does not read the clock — the nil path is allocation-free (guarded by
// TestSpanNilCollectorAllocs).
func Begin(c Collector, name string) Span {
	if c == nil {
		return Span{}
	}
	return Span{c: c, name: name, t0: time.Now()}
}

// End records the span with no byte accounting.
func (sp Span) End() { sp.EndFull(0, 0, 0, nil) }

// EndBytes records the span with input/output byte counts.
func (sp Span) EndBytes(in, out int64) { sp.EndFull(in, out, 0, nil) }

// EndFull records the span with full accounting. Extra is retained, not
// copied; callers hand over ownership.
func (sp Span) EndFull(in, out, items int64, extra []KV) {
	if sp.c == nil {
		return
	}
	sp.c.Record(Stage{
		Name:     sp.name,
		Duration: time.Since(sp.t0),
		InBytes:  in,
		OutBytes: out,
		Items:    items,
		Extra:    extra,
	})
}
