package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderCollects(t *testing.T) {
	var r Recorder
	sp := Begin(&r, "predict")
	time.Sleep(time.Millisecond)
	sp.EndFull(100, 40, 25, []KV{{"entropy_bits", 2.5}})
	Begin(&r, "lossless").EndBytes(40, 20)
	got := r.Stages()
	if len(got) != 2 {
		t.Fatalf("stages %d", len(got))
	}
	if got[0].Name != "predict" || got[0].Duration <= 0 || got[0].Items != 25 {
		t.Fatalf("bad record %+v", got[0])
	}
	if got[1].InBytes != 40 || got[1].OutBytes != 20 {
		t.Fatalf("bad record %+v", got[1])
	}
	r.Reset()
	if len(r.Stages()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSpanNilCollectorAllocs(t *testing.T) {
	// The no-collector hot path must not allocate or read the clock.
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Begin(nil, "predict")
		sp.EndFull(1, 2, 3, nil)
		Begin(nil, "x").End()
		Begin(Prefixed(nil, "chunk[0]"), "y").EndBytes(4, 5)
	})
	if allocs != 0 {
		t.Fatalf("nil-collector span allocated %v times per run", allocs)
	}
}

func TestPrefixed(t *testing.T) {
	var r Recorder
	c := Prefixed(&r, "template")
	Begin(c, "predict").End()
	Begin(Prefixed(c, "inner"), "entropy").End()
	got := r.Stages()
	if got[0].Name != "template/predict" {
		t.Fatalf("name %q", got[0].Name)
	}
	if got[1].Name != "template/inner/entropy" {
		t.Fatalf("name %q", got[1].Name)
	}
}

func TestAggregateMergesByBaseName(t *testing.T) {
	stages := []Stage{
		{Name: "chunk[0]/predict", Duration: 3 * time.Millisecond, InBytes: 10, Items: 5},
		{Name: "chunk[1]/predict", Duration: 5 * time.Millisecond, InBytes: 20, Items: 7},
		{Name: "chunk[0]/entropy", Duration: time.Millisecond, OutBytes: 4},
	}
	agg := Aggregate(stages)
	if len(agg) != 2 {
		t.Fatalf("aggregated %d", len(agg))
	}
	if agg[0].Name != "predict" || agg[0].Duration != 8*time.Millisecond ||
		agg[0].InBytes != 30 || agg[0].Items != 12 {
		t.Fatalf("bad aggregate %+v", agg[0])
	}
}

func TestTableRendering(t *testing.T) {
	stages := []Stage{
		{Name: "predict", Duration: 2 * time.Millisecond, InBytes: 4096, Items: 1024,
			Extra: []KV{{"literals", 3}}},
		{Name: "total", Duration: 3 * time.Millisecond, OutBytes: 900},
	}
	s := Table(stages)
	for _, want := range []string{"predict", "total", "literals=3", "4.0KiB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	if Table(nil) == "" {
		t.Fatal("empty table rendering")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Begin(&r, "s").End()
			}
		}()
	}
	wg.Wait()
	if len(r.Stages()) != 800 {
		t.Fatalf("lost records: %d", len(r.Stages()))
	}
}
