package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderCollects(t *testing.T) {
	var r Recorder
	sp := Begin(&r, "predict")
	time.Sleep(time.Millisecond)
	sp.EndFull(100, 40, 25, []KV{{"entropy_bits", 2.5}})
	Begin(&r, "lossless").EndBytes(40, 20)
	got := r.Stages()
	if len(got) != 2 {
		t.Fatalf("stages %d", len(got))
	}
	if got[0].Name != "predict" || got[0].Duration <= 0 || got[0].Items != 25 {
		t.Fatalf("bad record %+v", got[0])
	}
	if got[1].InBytes != 40 || got[1].OutBytes != 20 {
		t.Fatalf("bad record %+v", got[1])
	}
	r.Reset()
	if len(r.Stages()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSpanNilCollectorAllocs(t *testing.T) {
	// The no-collector hot path must not allocate or read the clock.
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Begin(nil, "predict")
		sp.EndFull(1, 2, 3, nil)
		Begin(nil, "x").End()
		Begin(Prefixed(nil, "chunk[0]"), "y").EndBytes(4, 5)
	})
	if allocs != 0 {
		t.Fatalf("nil-collector span allocated %v times per run", allocs)
	}
}

func TestPrefixed(t *testing.T) {
	var r Recorder
	c := Prefixed(&r, "template")
	Begin(c, "predict").End()
	Begin(Prefixed(c, "inner"), "entropy").End()
	got := r.Stages()
	if got[0].Name != "template/predict" {
		t.Fatalf("name %q", got[0].Name)
	}
	if got[1].Name != "template/inner/entropy" {
		t.Fatalf("name %q", got[1].Name)
	}
}

func TestAggregateMergesByBaseName(t *testing.T) {
	stages := []Stage{
		{Name: "chunk[0]/predict", Duration: 3 * time.Millisecond, InBytes: 10, Items: 5},
		{Name: "chunk[1]/predict", Duration: 5 * time.Millisecond, InBytes: 20, Items: 7},
		{Name: "chunk[0]/entropy", Duration: time.Millisecond, OutBytes: 4},
	}
	agg := Aggregate(stages)
	if len(agg) != 2 {
		t.Fatalf("aggregated %d", len(agg))
	}
	if agg[0].Name != "predict" || agg[0].Duration != 8*time.Millisecond ||
		agg[0].InBytes != 30 || agg[0].Items != 12 {
		t.Fatalf("bad aggregate %+v", agg[0])
	}
}

func TestTableRendering(t *testing.T) {
	stages := []Stage{
		{Name: "predict", Duration: 2 * time.Millisecond, InBytes: 4096, Items: 1024,
			Extra: []KV{{"literals", 3}}},
		{Name: "total", Duration: 3 * time.Millisecond, OutBytes: 900},
	}
	s := Table(stages)
	for _, want := range []string{"predict", "total", "literals=3", "4.0KiB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	if Table(nil) == "" {
		t.Fatal("empty table rendering")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Begin(&r, "s").End()
			}
		}()
	}
	wg.Wait()
	if len(r.Stages()) != 800 {
		t.Fatalf("lost records: %d", len(r.Stages()))
	}
}

// TestRecorderScratchReuseRace is the regression for the Extra-aliasing data
// race: a producer that recycles its KV scratch buffer across records (the
// per-worker trace of a long-lived server) while another goroutine reads
// Stages() snapshots. Before Record copied Extra, the snapshot aliased the
// producer's live scratch and -race flagged the write/read pair; with the
// copy the two sides never share memory.
func TestRecorderScratchReuseRace(t *testing.T) {
	var r Recorder
	done := make(chan struct{})
	go func() {
		defer close(done)
		scratch := make([]KV, 1)
		for i := 0; i < 500; i++ {
			scratch[0] = KV{Key: "v", Value: float64(i)}
			r.Record(Stage{Name: "s", Extra: scratch})
		}
	}()
	sum := 0.0
	for i := 0; i < 200; i++ {
		for _, s := range r.Stages() {
			for _, kv := range s.Extra {
				sum += kv.Value
			}
		}
	}
	<-done
	// Every snapshot must see the value recorded, not a later scratch write.
	for i, s := range r.Stages() {
		if len(s.Extra) != 1 || s.Extra[0].Value != float64(i) {
			t.Fatalf("record %d carries %+v, want value %d", i, s.Extra, i)
		}
	}
	_ = sum
}

func TestAggregatorMerges(t *testing.T) {
	var a Aggregator
	a.Record(Stage{Name: "chunk[0]/predict", Duration: 3 * time.Millisecond, InBytes: 10, Items: 4})
	a.Record(Stage{Name: "chunk[1]/predict", Duration: 5 * time.Millisecond, InBytes: 20, Items: 8})
	a.Record(Stage{Name: "entropy", Duration: 2 * time.Millisecond, OutBytes: 7})
	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 rows, got %d: %+v", len(snap), snap)
	}
	if snap[0].Name != "predict" || snap[0].Duration != 8*time.Millisecond ||
		snap[0].InBytes != 30 || snap[0].Items != 12 {
		t.Fatalf("bad merged row %+v", snap[0])
	}
	if snap[0].Extra[0].Key != "records" || snap[0].Extra[0].Value != 2 {
		t.Fatalf("bad records annotation %+v", snap[0].Extra)
	}
	if a.Count() != 3 {
		t.Fatalf("count = %d, want 3", a.Count())
	}
	a.Reset()
	if len(a.Snapshot()) != 0 || a.Count() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestAggregatorBounded(t *testing.T) {
	var a Aggregator
	for i := 0; i < 3*maxAggStages; i++ {
		a.Record(Stage{Name: fmt.Sprintf("stage-%d", i), Duration: time.Microsecond})
	}
	snap := a.Snapshot()
	if len(snap) > maxAggStages+1 {
		t.Fatalf("aggregator grew past cap: %d rows", len(snap))
	}
	var overflow int64
	for _, s := range snap {
		if s.Name == aggOverflow {
			overflow = int64(s.Extra[0].Value)
		}
	}
	if overflow != 2*maxAggStages {
		t.Fatalf("overflow row folded %d records, want %d", overflow, 2*maxAggStages)
	}
	if a.Count() != 3*maxAggStages {
		t.Fatalf("count = %d", a.Count())
	}
}

func TestAggregatorConcurrent(t *testing.T) {
	var a Aggregator
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Begin(&a, "chunk[1]/s").EndFull(1, 2, 3, nil)
				_ = a.Snapshot()
			}
		}()
	}
	wg.Wait()
	if a.Count() != 1600 {
		t.Fatalf("lost records: %d", a.Count())
	}
	snap := a.Snapshot()
	if len(snap) != 1 || snap[0].InBytes != 1600 || snap[0].Items != 4800 {
		t.Fatalf("bad concurrent merge %+v", snap)
	}
}
