// Package zfp reimplements the ZFP fixed-accuracy compressor (Lindstrom,
// TVCG 2014), the transform-based baseline of the paper's evaluation.
//
// The codec follows the original design: data is partitioned into 4^d
// blocks; each block is aligned to a common exponent and promoted to 30-bit
// fixed point; the ZFP non-orthogonal lifted transform decorrelates each
// dimension; coefficients are reordered by total sequency, mapped to
// negabinary, and bit planes are coded MSB-first with the group-testing
// (unary run-length) coder. Fixed-accuracy mode codes
// max(0, emax − ⌊log₂ tol⌋ + 2(d+1)) planes per block.
//
// Ranks 1–3 are coded natively; 4D datasets are compressed as independent
// 3D slabs along the leading dimension (standard ZFP practice).
//
// Fill values (huge sentinels) blow up the block exponent and force
// near-lossless coding of coastal blocks — faithfully reproducing why
// transform coders struggle on masked climate fields (paper §V-A).
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"cliz/internal/bitio"
	"cliz/internal/codec"
	"cliz/internal/dataset"
)

const (
	magic    = "ZFP1"
	intprec  = 32 // bit planes per coefficient
	guardExp = 30 // fixed-point scaling exponent (2 guard bits)
)

// ErrCorrupt reports a malformed ZFP blob.
var ErrCorrupt = errors.New("zfp: corrupt blob")

// Compressor implements codec.Compressor.
type Compressor struct{}

func init() { codec.Register(Compressor{}) }

// Name implements codec.Compressor.
func (Compressor) Name() string { return "ZFP" }

// sequency caches the per-rank coefficient orderings (total sequency:
// ascending sum of the 4-ary digits, ties by index — ZFP's zigzag analogue).
var sequency [4][]int

func init() {
	for r := 1; r <= 3; r++ {
		n := 1 << (2 * r) // 4^r
		ord := make([]int, n)
		for i := range ord {
			ord[i] = i
		}
		digitSum := func(i int) int {
			s := 0
			for k := 0; k < r; k++ {
				s += i & 3
				i >>= 2
			}
			return s
		}
		sort.SliceStable(ord, func(a, b int) bool {
			da, db := digitSum(ord[a]), digitSum(ord[b])
			if da != db {
				return da < db
			}
			return ord[a] < ord[b]
		})
		sequency[r-1] = ord
	}
}

// fwdLift is ZFP's forward lifting step on four values at stride s.
func fwdLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// invLift is the matching inverse.
func invLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// fwdXform transforms a 4^rank block in place.
func fwdXform(blk []int32, rank int) {
	switch rank {
	case 1:
		fwdLift(blk, 0, 1)
	case 2:
		for y := 0; y < 4; y++ { // along x
			fwdLift(blk, 4*y, 1)
		}
		for x := 0; x < 4; x++ { // along y
			fwdLift(blk, x, 4)
		}
	case 3:
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(blk, 16*z+4*y, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(blk, 16*z+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(blk, 4*y+x, 16)
			}
		}
	}
}

func invXform(blk []int32, rank int) {
	switch rank {
	case 1:
		invLift(blk, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(blk, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(blk, 4*y, 1)
		}
	case 3:
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(blk, 4*y+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(blk, 16*z+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(blk, 16*z+4*y, 1)
			}
		}
	}
}

// int32 ↔ negabinary (ZFP's sign mapping keeps bit planes meaningful).
const nbMask = 0xaaaaaaaa

func int2nb(x int32) uint32 { return (uint32(x) + nbMask) ^ nbMask }
func nb2int(u uint32) int32 { return int32((u ^ nbMask) - nbMask) }

// encodePlanes writes the block's bit planes MSB-first with ZFP's
// group-testing coder, coding planes intprec-1 .. kmin.
func encodePlanes(w *bitio.Writer, coeff []uint32, kmin int) {
	size := len(coeff)
	n := 0
	for k := intprec - 1; k >= kmin; k-- {
		// Gather plane k (bit i ⇔ coefficient i, sequency order).
		var x uint64
		for i := 0; i < size; i++ {
			x |= uint64((coeff[i]>>uint(k))&1) << uint(i)
		}
		// First n coefficients are known significant: emit their bits.
		for i := 0; i < n; i++ {
			w.WriteBit(uint(x & 1))
			x >>= 1
		}
		// Group-test the rest.
		for n < size {
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 {
				bit := uint(x & 1)
				w.WriteBit(bit)
				if bit != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
}

// decodePlanes mirrors encodePlanes.
func decodePlanes(r *bitio.Reader, size, kmin int) ([]uint32, error) {
	coeff := make([]uint32, size)
	n := 0
	for k := intprec - 1; k >= kmin; k-- {
		var x uint64
		for i := 0; i < n; i++ {
			b, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			x |= uint64(b) << uint(i)
		}
		for n < size {
			b, err := r.ReadBit()
			if err != nil {
				return nil, err
			}
			if b == 0 {
				break
			}
			for n < size-1 {
				bb, err := r.ReadBit()
				if err != nil {
					return nil, err
				}
				if bb != 0 {
					break
				}
				n++
			}
			x |= uint64(1) << uint(n)
			n++
		}
		for i := 0; i < size; i++ {
			coeff[i] |= uint32((x>>uint(i))&1) << uint(k)
		}
	}
	return coeff, nil
}

// blockGeom precomputes the block iteration for one slab.
type blockGeom struct {
	dims    []int
	strides []int
	nBlocks []int
	rank    int
	size    int // 4^rank
}

func newGeom(dims []int) blockGeom {
	rank := len(dims)
	g := blockGeom{dims: dims, rank: rank, size: 1 << (2 * rank)}
	g.strides = make([]int, rank)
	acc := 1
	for i := rank - 1; i >= 0; i-- {
		g.strides[i] = acc
		acc *= dims[i]
	}
	g.nBlocks = make([]int, rank)
	for i, d := range dims {
		g.nBlocks[i] = (d + 3) / 4
	}
	return g
}

func (g blockGeom) totalBlocks() int {
	t := 1
	for _, n := range g.nBlocks {
		t *= n
	}
	return t
}

// gather copies one block (clamping out-of-range coordinates to the edge,
// which replicates boundary samples as padding).
func (g blockGeom) gather(data []float32, bcoord []int, blk []float64) {
	for cell := 0; cell < g.size; cell++ {
		c := cell
		off := 0
		for ax := g.rank - 1; ax >= 0; ax-- {
			p := bcoord[ax]*4 + (c & 3)
			c >>= 2
			if p >= g.dims[ax] {
				p = g.dims[ax] - 1
			}
			off += p * g.strides[ax]
		}
		blk[cell] = float64(data[off])
	}
}

// scatter writes a decoded block back, skipping padded cells.
func (g blockGeom) scatter(data []float32, bcoord []int, blk []float64) {
	for cell := 0; cell < g.size; cell++ {
		c := cell
		off := 0
		ok := true
		for ax := g.rank - 1; ax >= 0; ax-- {
			p := bcoord[ax]*4 + (c & 3)
			c >>= 2
			if p >= g.dims[ax] {
				ok = false
				break
			}
			off += p * g.strides[ax]
		}
		if ok {
			data[off] = float32(blk[cell])
		}
	}
}

// precision implements ZFP's fixed-accuracy plane budget.
func precision(emax, minexp, rank int) int {
	p := emax - minexp + 2*(rank+1)
	if p < 0 {
		p = 0
	}
	if p > intprec {
		p = intprec
	}
	return p
}

func encodeSlab(w *bitio.Writer, data []float32, dims []int, minexp int) {
	g := newGeom(dims)
	ord := sequency[g.rank-1]
	blk := make([]float64, g.size)
	qi := make([]int32, g.size)
	nb := make([]uint32, g.size)
	bcoord := make([]int, g.rank)
	for b := 0; b < g.totalBlocks(); b++ {
		g.gather(data, bcoord, blk)
		// Common exponent.
		emax := math.MinInt32
		for _, v := range blk {
			if v != 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				_, e := math.Frexp(math.Abs(v))
				if e > emax {
					emax = e
				}
			}
		}
		prec := 0
		if emax != math.MinInt32 {
			prec = precision(emax, minexp, g.rank)
		}
		if prec == 0 {
			w.WriteBit(0) // empty/negligible block
		} else {
			w.WriteBit(1)
			w.WriteBits(uint64(uint16(int16(emax))), 16)
			// Promote to block-aligned fixed point.
			scale := math.Ldexp(1, guardExp-emax)
			for i, v := range blk {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				qi[i] = int32(v * scale)
			}
			fwdXform(qi, g.rank)
			for i, o := range ord {
				nb[i] = int2nb(qi[o])
			}
			encodePlanes(w, nb, intprec-prec)
		}
		// Next block coordinate.
		for ax := g.rank - 1; ax >= 0; ax-- {
			bcoord[ax]++
			if bcoord[ax] < g.nBlocks[ax] {
				break
			}
			bcoord[ax] = 0
		}
	}
}

func decodeSlab(r *bitio.Reader, data []float32, dims []int, minexp int) error {
	g := newGeom(dims)
	ord := sequency[g.rank-1]
	blk := make([]float64, g.size)
	qi := make([]int32, g.size)
	bcoord := make([]int, g.rank)
	for b := 0; b < g.totalBlocks(); b++ {
		bit, err := r.ReadBit()
		if err != nil {
			return err
		}
		if bit == 0 {
			for i := range blk {
				blk[i] = 0
			}
		} else {
			e, err := r.ReadBits(16)
			if err != nil {
				return err
			}
			emax := int(int16(uint16(e)))
			prec := precision(emax, minexp, g.rank)
			nb, err := decodePlanes(r, g.size, intprec-prec)
			if err != nil {
				return err
			}
			for i, o := range ord {
				qi[o] = nb2int(nb[i])
			}
			invXform(qi, g.rank)
			scale := math.Ldexp(1, emax-guardExp)
			for i, q := range qi {
				blk[i] = float64(q) * scale
			}
		}
		g.scatter(data, bcoord, blk)
		for ax := g.rank - 1; ax >= 0; ax-- {
			bcoord[ax]++
			if bcoord[ax] < g.nBlocks[ax] {
				break
			}
			bcoord[ax] = 0
		}
	}
	return nil
}

// Compress implements codec.Compressor (fixed-accuracy mode with absolute
// tolerance eb; the effective tolerance is 2^⌊log₂ eb⌋ ≤ eb, like ZFP).
func (Compressor) Compress(ds *dataset.Dataset, eb float64) ([]byte, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if eb <= 0 {
		return nil, fmt.Errorf("zfp: tolerance must be positive, got %g", eb)
	}
	// The block transform has no way to represent NaN/Inf: they would be
	// silently zeroed during fixed-point promotion, violating the bound
	// without any signal. Reject them up front instead.
	for i, v := range ds.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("zfp: non-finite value %g at index %d: ZFP cannot bound NaN/Inf (mask or replace them first)", v, i)
		}
	}
	minexp := int(math.Floor(math.Log2(eb)))
	dims := ds.Dims
	out := make([]byte, 0, len(ds.Data))
	out = append(out, magic...)
	out = append(out, 1) // version
	out = append(out, byte(len(dims)))
	var b2 [2]byte
	binary.LittleEndian.PutUint16(b2[:], uint16(int16(minexp)))
	out = append(out, b2[:]...)
	for _, d := range dims {
		out = appendUvarint(out, uint64(d))
	}
	w := bitio.NewWriter(len(ds.Data))
	if len(dims) <= 3 {
		encodeSlab(w, ds.Data, dims, minexp)
	} else {
		// 4D: independent 3D slabs along the leading dimension.
		slab := 1
		for _, d := range dims[1:] {
			slab *= d
		}
		for t := 0; t < dims[0]; t++ {
			encodeSlab(w, ds.Data[t*slab:(t+1)*slab], dims[1:], minexp)
		}
	}
	bits := w.Bytes()
	out = appendUvarint(out, uint64(len(bits)))
	return append(out, bits...), nil
}

// Decompress implements codec.Compressor.
func (Compressor) Decompress(blob []byte) ([]float32, []int, error) {
	if len(blob) < 8 || string(blob[:4]) != magic {
		return nil, nil, ErrCorrupt
	}
	pos := 4
	if blob[pos] != 1 {
		return nil, nil, fmt.Errorf("zfp: unsupported version %d", blob[pos])
	}
	pos++
	rank := int(blob[pos])
	pos++
	if rank < 1 || rank > 4 {
		return nil, nil, ErrCorrupt
	}
	minexp := int(int16(binary.LittleEndian.Uint16(blob[pos:])))
	pos += 2
	dims := make([]int, rank)
	vol := 1
	for i := range dims {
		d, n := binary.Uvarint(blob[pos:])
		if n <= 0 || d == 0 || d > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		pos += n
		dims[i] = int(d)
		vol *= int(d)
		if vol > 1<<33 {
			return nil, nil, ErrCorrupt
		}
	}
	blen, n := binary.Uvarint(blob[pos:])
	if n <= 0 {
		return nil, nil, ErrCorrupt
	}
	pos += n
	if uint64(pos)+blen > uint64(len(blob)) {
		return nil, nil, ErrCorrupt
	}
	r := bitio.NewReader(blob[pos : pos+int(blen)])
	data := make([]float32, vol)
	if rank <= 3 {
		if err := decodeSlab(r, data, dims, minexp); err != nil {
			return nil, nil, err
		}
	} else {
		slab := vol / dims[0]
		for t := 0; t < dims[0]; t++ {
			if err := decodeSlab(r, data[t*slab:(t+1)*slab], dims[1:], minexp); err != nil {
				return nil, nil, err
			}
		}
	}
	return data, dims, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}
