package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cliz/internal/bitio"
	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/stats"
)

func TestLiftNearInverse(t *testing.T) {
	// ZFP's lossy lifting pair is not bit-exact (the >>1 steps drop low
	// bits, exactly as in the original), but the reconstruction error must
	// stay within a few ulps — far below any coded bit plane.
	f := func(a, b, c, d int32) bool {
		vals := []int32{a >> 2, b >> 2, c >> 2, d >> 2}
		blk := append([]int32(nil), vals...)
		fwdLift(blk, 0, 1)
		invLift(blk, 0, 1)
		for i := range vals {
			diff := int64(blk[i]) - int64(vals[i])
			if diff < -8 || diff > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXformNearInverse3D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	blk := make([]int32, 64)
	orig := make([]int32, 64)
	for i := range blk {
		blk[i] = int32(rng.Intn(1<<28)) - 1<<27
		orig[i] = blk[i]
	}
	fwdXform(blk, 3)
	invXform(blk, 3)
	for i := range blk {
		diff := int64(blk[i]) - int64(orig[i])
		if diff < -64 || diff > 64 {
			t.Fatalf("3D transform error too large at %d: %d vs %d", i, blk[i], orig[i])
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	f := func(x int32) bool { return nb2int(int2nb(x)) == x }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinaryMagnitudeOrdering(t *testing.T) {
	// Small-magnitude ints must have their high negabinary planes zero,
	// otherwise plane truncation would not be embedded coding.
	if int2nb(0) != 0 {
		t.Fatalf("nb(0) = %#x", int2nb(0))
	}
	for _, v := range []int32{1, -1, 5, -7, 100, -100} {
		u := int2nb(v)
		if u>>20 != 0 {
			t.Fatalf("nb(%d) = %#x has high bits set", v, u)
		}
	}
}

func TestPlaneCoderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 << (2 * (rng.Intn(3) + 1)) // 4, 16, 64
		coeff := make([]uint32, size)
		for i := range coeff {
			// Energy-decaying coefficients, like a real transform output.
			coeff[i] = uint32(rng.Int63()) >> uint(rng.Intn(24))
		}
		kmin := rng.Intn(20)
		w := bitio.NewWriter(64)
		encodePlanes(w, coeff, kmin)
		r := bitio.NewReader(w.Bytes())
		got, err := decodePlanes(r, size, kmin)
		if err != nil {
			return false
		}
		maskHi := ^uint32(0) << uint(kmin)
		for i := range coeff {
			if got[i] != coeff[i]&maskHi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSequencyOrderProperties(t *testing.T) {
	for r := 1; r <= 3; r++ {
		ord := sequency[r-1]
		n := 1 << (2 * r)
		if len(ord) != n {
			t.Fatalf("rank %d: len %d", r, len(ord))
		}
		seen := make([]bool, n)
		for _, o := range ord {
			if o < 0 || o >= n || seen[o] {
				t.Fatalf("rank %d: not a permutation", r)
			}
			seen[o] = true
		}
		if ord[0] != 0 {
			t.Fatalf("rank %d: DC coefficient must come first", r)
		}
	}
}

func roundTrip(t *testing.T, ds *dataset.Dataset, eb float64) []float32 {
	t.Helper()
	var c Compressor
	blob, err := c.Compress(ds, eb)
	if err != nil {
		t.Fatal(err)
	}
	got, dims, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != len(ds.Dims) {
		t.Fatalf("dims %v", dims)
	}
	return got
}

func TestRoundTripErrorBound(t *testing.T) {
	ds := datagen.HurricaneT(0.06)
	for _, rel := range []float64{1e-1, 1e-2, 1e-3} {
		eb := ds.AbsErrorBound(rel)
		got := roundTrip(t, ds, eb)
		if e := stats.MaxAbsErr(ds.Data, got, nil); e > eb {
			t.Fatalf("rel %g: max error %g > tol %g", rel, e, eb)
		}
	}
}

func TestRoundTrip1D2D4D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := [][]int{{257}, {33, 41}, {3, 5, 17, 19}}
	for _, dims := range shapes {
		vol := 1
		for _, d := range dims {
			vol *= d
		}
		data := make([]float32, vol)
		for i := range data {
			data[i] = float32(math.Sin(float64(i)/7) + 0.1*rng.NormFloat64())
		}
		ds := &dataset.Dataset{Name: "t", Data: data, Dims: dims}
		got := roundTrip(t, ds, 0.01)
		if e := stats.MaxAbsErr(data, got, nil); e > 0.01 {
			t.Fatalf("%v: max error %g", dims, e)
		}
	}
}

func TestZeroBlockHandling(t *testing.T) {
	data := make([]float32, 16*16)
	ds := &dataset.Dataset{Name: "zero", Data: data, Dims: []int{16, 16}}
	var c Compressor
	blob, err := c.Compress(ds, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero data must compress to nearly nothing (1 bit per block).
	if len(blob) > 64 {
		t.Fatalf("zero field used %d bytes", len(blob))
	}
	got, _, err := c.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("zero field decoded %g at %d", v, i)
		}
	}
}

func TestSmootherDataCompressesBetter(t *testing.T) {
	n := 64 * 64
	smooth := make([]float32, n)
	rough := make([]float32, n)
	rng := rand.New(rand.NewSource(3))
	for i := range smooth {
		smooth[i] = float32(math.Sin(float64(i) / 300))
		rough[i] = float32(rng.NormFloat64())
	}
	var c Compressor
	sb, _ := c.Compress(&dataset.Dataset{Name: "s", Data: smooth, Dims: []int{64, 64}}, 0.001)
	rb, _ := c.Compress(&dataset.Dataset{Name: "r", Data: rough, Dims: []int{64, 64}}, 0.001)
	if len(sb) >= len(rb) {
		t.Fatalf("smooth %d >= rough %d bytes", len(sb), len(rb))
	}
}

func TestFillValuesHurtRatio(t *testing.T) {
	// The paper's §V-A observation: huge sentinels wreck transform coding.
	ds := datagen.SSH(0.08) // contains 9.97e36 fills
	clean := ds.Clone()
	valid := ds.Validity()
	for i, ok := range valid {
		if !ok {
			clean.Data[i] = 0 // neutralized fills
		}
	}
	eb := ds.AbsErrorBound(1e-2)
	var c Compressor
	withFills, err := c.Compress(ds, eb)
	if err != nil {
		t.Fatal(err)
	}
	without, err := c.Compress(clean, eb)
	if err != nil {
		t.Fatal(err)
	}
	if len(withFills) <= len(without) {
		t.Fatalf("fill values should hurt: %d vs %d bytes", len(withFills), len(without))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	ds := datagen.HurricaneT(0.05)
	var c Compressor
	blob, err := c.Compress(ds, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := c.Decompress([]byte("XXXXYYYY")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, _, err := c.Decompress(blob[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, _, err := c.Decompress(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestInvalidInputs(t *testing.T) {
	var c Compressor
	ds := &dataset.Dataset{Name: "x", Data: make([]float32, 4), Dims: []int{2, 2}}
	if _, err := c.Compress(ds, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	bad := &dataset.Dataset{Name: "x", Data: make([]float32, 3), Dims: []int{2, 2}}
	if _, err := c.Compress(bad, 1); err == nil {
		t.Fatal("inconsistent dataset accepted")
	}
}
