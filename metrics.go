package cliz

import (
	"cliz/internal/quality"
	"cliz/internal/stats"
)

// QualityReport is the full Z-checker-style assessment of a reconstruction:
// pointwise error statistics, PSNR/SSIM/Pearson, the 1-Wasserstein distance
// between value distributions, a lag-1 error autocorrelation (artifact
// probe), and an error histogram. Its String method renders a summary block.
type QualityReport = quality.Report

// Assess runs the full quality suite over a reconstruction.
func Assess(orig, recon []float32, dims []int, valid []bool) QualityReport {
	return quality.Assess(orig, recon, dims, valid)
}

// PSNR computes the peak signal-to-noise ratio (paper Formula (3)) between
// the original and reconstructed data; valid may be nil, or mark the points
// to score (e.g. from ValidityOf).
func PSNR(orig, recon []float32, valid []bool) float64 {
	return stats.PSNR(orig, recon, valid)
}

// SSIM computes the mean windowed structural similarity (paper Formulas
// (4)–(5)) over the dataset's trailing-two-dimension planes with the given
// window side (8 is a common choice).
func SSIM(orig, recon []float32, dims []int, window int, valid []bool) float64 {
	return stats.SSIM(orig, recon, dims, window, valid)
}

// MaxAbsErr returns the maximum pointwise absolute error over valid points,
// the quantity an error-bounded compressor guarantees.
func MaxAbsErr(orig, recon []float32, valid []bool) float64 {
	return stats.MaxAbsErr(orig, recon, valid)
}

// ValidityOf expands a dataset's mask into a per-point validity bitmap
// (nil when the dataset has no mask).
func ValidityOf(ds *Dataset) ([]bool, error) {
	ids, err := ds.internal()
	if err != nil {
		return nil, err
	}
	return ids.Validity(), nil
}
