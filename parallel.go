package cliz

import "cliz/internal/core"

// CompressChunked splits the dataset along its leading dimension into
// nChunks independently-compressed pieces and compresses them concurrently
// with the given number of workers (0 = GOMAXPROCS) — the library-level
// counterpart of the paper's per-core-file Globus setup (§VII-C4). Periodic
// pipelines keep chunk boundaries on whole periods. The container is decoded
// (also in parallel) by the regular Decompress. With WithTrace attached,
// each chunk's stages are recorded path-qualified as "chunk[i]/...".
func CompressChunked(ds *Dataset, eb ErrorBound, pipe *Pipeline, nChunks, workers int, opts ...CompressOption) ([]byte, *CompressInfo, error) {
	var cfg compressConfig
	for _, o := range opts {
		o(&cfg)
	}
	ids, err := ds.internal()
	if err != nil {
		return nil, nil, err
	}
	abs, err := eb.resolve(ids)
	if err != nil {
		return nil, nil, err
	}
	var p core.Pipeline
	if pipe != nil && pipe.p.Perm != nil {
		p = pipe.p
	} else {
		p = core.Default(ids)
	}
	blob, err := core.CompressChunked(ids, abs, p, core.Options{Trace: cfg.trace.collector()}, nChunks, workers)
	if err != nil {
		return nil, nil, err
	}
	points := ids.Points()
	info := &CompressInfo{
		CompressedBytes: len(blob),
		Ratio:           float64(points*4) / float64(len(blob)),
		BitRate:         float64(len(blob)) * 8 / float64(points),
		Pipeline:        p.String(),
	}
	if cfg.trace != nil {
		info.Stages = cfg.trace.Stages()
	}
	return blob, info, nil
}
