package cliz

import "cliz/internal/core"

// CompressChunked splits the dataset along its leading dimension into
// nChunks independently-compressed pieces and compresses them concurrently
// with the given number of workers (0 = GOMAXPROCS) — the library-level
// counterpart of the paper's per-core-file Globus setup (§VII-C4). Periodic
// pipelines keep chunk boundaries on whole periods. The container is decoded
// (also in parallel) by the regular Decompress. With WithTrace attached,
// each chunk's stages are recorded path-qualified as "chunk[i]/...".
// WithWorkers additionally bounds parallelism *inside* each chunk; the two
// levels multiply, so keep the product near GOMAXPROCS.
func CompressChunked(ds *Dataset, eb ErrorBound, pipe *Pipeline, nChunks, workers int, opts ...Option) ([]byte, *CompressInfo, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	ids, abs, p, err := prepare(ds, eb, pipe)
	if err != nil {
		return nil, nil, err
	}
	blob, err := core.CompressChunked(ids, abs, p, core.Options{
		Trace:               cfg.trace.collector(),
		Workers:             cfg.workers,
		Entropy:             cfg.entropy,
		MaterializedPermute: cfg.materialized,
		Interrupt:           cfg.interrupt(),
	}, nChunks, workers)
	if err != nil {
		return nil, nil, err
	}
	return blob, newCompressInfo(ids, blob, p, &cfg), nil
}
