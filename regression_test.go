package cliz_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"cliz"
)

func gradientDataset(name string) *cliz.Dataset {
	data := make([]float32, 6*8*10)
	for i := range data {
		data[i] = float32(i%13) * 0.25
	}
	return &cliz.Dataset{Name: name, Data: data, Dims: []int{6, 8, 10}, Lead: cliz.LeadTime}
}

// TestZeroValuePipelineRejected pins the fix for the silently-ignored
// pipeline bug: passing a non-nil but zero-value &cliz.Pipeline{} (never
// produced by AutoTune or DefaultPipeline) used to be silently swapped for
// the default pipeline by both Compress and CompressChunked. It must be a
// clear error instead — only an explicit nil selects the default.
func TestZeroValuePipelineRejected(t *testing.T) {
	ds := gradientDataset("zerovalue")
	if _, _, err := cliz.Compress(ds, cliz.Abs(0.01), &cliz.Pipeline{}); err == nil {
		t.Fatal("Compress accepted a zero-value Pipeline")
	} else if !strings.Contains(err.Error(), "zero-value Pipeline") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, _, err := cliz.CompressChunked(ds, cliz.Abs(0.01), &cliz.Pipeline{}, 2, 2); err == nil {
		t.Fatal("CompressChunked accepted a zero-value Pipeline")
	} else if !strings.Contains(err.Error(), "zero-value Pipeline") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// nil still selects the default, and a real pipeline still works.
	if _, _, err := cliz.Compress(ds, cliz.Abs(0.01), nil); err != nil {
		t.Fatalf("nil pipeline: %v", err)
	}
	pipe, err := cliz.DefaultPipeline(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cliz.Compress(ds, cliz.Abs(0.01), &pipe); err != nil {
		t.Fatalf("default pipeline: %v", err)
	}
}

// TestRelBoundZeroRangeRejected pins the fix for the silently-succeeding
// relative bound on a constant field: with a zero value range there is
// nothing for Rel to be relative to, and the old code quietly substituted a
// range of 1. The error must name the zero range and point at Abs.
func TestRelBoundZeroRangeRejected(t *testing.T) {
	data := make([]float32, 64)
	for i := range data {
		data[i] = 3.5
	}
	ds := &cliz.Dataset{Name: "const", Data: data, Dims: []int{8, 8}}
	_, _, err := cliz.Compress(ds, cliz.Rel(1e-2), nil)
	if err == nil {
		t.Fatal("Rel bound on constant field compressed without error")
	}
	if !strings.Contains(err.Error(), "zero value range") {
		t.Fatalf("error does not name the zero value range: %v", err)
	}
	// The same field under an absolute bound still works.
	if _, _, err := cliz.Compress(ds, cliz.Abs(0.01), nil); err != nil {
		t.Fatalf("Abs on constant field: %v", err)
	}
}

// TestWithWorkersRoundTrip drives the public WithWorkers option end to end:
// parallel encode round-trips within the bound, decode output is identical
// for every decode-side worker count, and the chunked path accepts the
// option too.
func TestWithWorkersRoundTrip(t *testing.T) {
	ds := gradientDataset("workers")
	blob, info, err := cliz.Compress(ds, cliz.Abs(0.01), nil, cliz.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if info.Ratio <= 0 {
		t.Fatalf("ratio %g", info.Ratio)
	}
	ref, dims, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 3 || dims[0] != 6 || dims[1] != 8 || dims[2] != 10 {
		t.Fatalf("dims %v", dims)
	}
	for i, v := range ref {
		if math.Abs(float64(v)-float64(ds.Data[i])) > 0.01*1.00001 {
			t.Fatalf("point %d exceeds bound", i)
		}
	}
	for _, w := range []int{1, 2, 8} {
		got, _, err := cliz.Decompress(blob, cliz.WithWorkers(w))
		if err != nil {
			t.Fatalf("decode workers=%d: %v", w, err)
		}
		if !bytes.Equal(floatBytes(got), floatBytes(ref)) {
			t.Fatalf("decode workers=%d: output differs", w)
		}
	}
	chunked, _, err := cliz.CompressChunked(ds, cliz.Abs(0.01), nil, 2, 2, cliz.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := cliz.Decompress(chunked, cliz.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range recon {
		if math.Abs(float64(v)-float64(ds.Data[i])) > 0.01*1.00001 {
			t.Fatalf("chunked point %d exceeds bound", i)
		}
	}
}

func floatBytes(data []float32) []byte {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return raw
}

// TestWithEntropyAndMaterializedPermute drives the public entropy-kind and
// legacy-permute options end to end: every entropy kind round-trips through
// the bound, interleaved rANS actually lands in the blob (inspectable via a
// second decode), and the materialized-permute escape hatch produces a blob
// byte-identical to the fused default.
func TestWithEntropyAndMaterializedPermute(t *testing.T) {
	ds := gradientDataset("entropy-opts")
	for _, k := range []cliz.EntropyKind{cliz.EntropyHuffman, cliz.EntropyRANS, cliz.EntropyRANSInterleaved} {
		blob, _, err := cliz.Compress(ds, cliz.Abs(0.01), nil, cliz.WithEntropy(k))
		if err != nil {
			t.Fatalf("%v: compress: %v", k, err)
		}
		recon, dims, err := cliz.Decompress(blob)
		if err != nil {
			t.Fatalf("%v: decompress: %v", k, err)
		}
		if len(dims) != 3 || dims[0] != 6 || dims[1] != 8 || dims[2] != 10 {
			t.Fatalf("%v: dims %v", k, dims)
		}
		for i := range recon {
			if d := float64(recon[i] - ds.Data[i]); d > 0.01 || d < -0.01 {
				t.Fatalf("%v: bound violated at %d: %v vs %v", k, i, recon[i], ds.Data[i])
			}
		}
	}
	fused, _, err := cliz.Compress(ds, cliz.Abs(0.01), nil)
	if err != nil {
		t.Fatal(err)
	}
	legacy, _, err := cliz.Compress(ds, cliz.Abs(0.01), nil, cliz.WithMaterializedPermute())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fused, legacy) {
		t.Fatal("materialized-permute blob differs from fused default")
	}
	if recon, _, err := cliz.Decompress(legacy, cliz.WithMaterializedPermute()); err != nil {
		t.Fatalf("legacy decompress: %v", err)
	} else if got, _, err2 := cliz.Decompress(fused); err2 != nil {
		t.Fatal(err2)
	} else if !bytes.Equal(floatBytes(recon), floatBytes(got)) {
		t.Fatal("legacy and fused decodes differ")
	}
}
