#!/usr/bin/env bash
# clizd end-to-end smoke: build the daemon, generate a synthetic field,
# exercise every endpoint through a live server, and assert that the
# tuned-pipeline cache actually skips AutoTune on the second hit (visible
# in the /metrics counters). CI runs this on every push.
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d)
port="${CLIZD_PORT:-18080}"
base="http://127.0.0.1:${port}"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/clizd" ./cmd/clizd
go build -o "$work/datagen" ./cmd/datagen

echo "== payload"
"$work/datagen" -out "$work" -name SSH -scale 0.1 -format raw
# meta line: "dims: [108 38 32]" -> wire format "108x38x32"
dims=$(sed -n 's/^dims: \[\(.*\)\]$/\1/p' "$work/SSH.meta" | tr ' ' 'x')
echo "   dims=$dims"

echo "== start clizd"
"$work/clizd" -addr "127.0.0.1:${port}" -workers 2 -queue 4 &
pid=$!
for _ in $(seq 1 50); do
    curl -sf "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "$base/healthz"
echo

echo "== compress (tuned, cache miss expected)"
curl -sf --data-binary @"$work/SSH.f32" -D "$work/h1" \
    "$base/v1/compress?dims=$dims&rel=1e-3&lead=time&periodic=1&tune=1" \
    -o "$work/SSH.clz"
grep -i '^x-cliz-cache: miss' "$work/h1"
grep -i '^x-cliz-ratio:' "$work/h1"

echo "== compress again (same family, cache hit expected)"
curl -sf --data-binary @"$work/SSH.f32" -D "$work/h2" \
    "$base/v1/compress?dims=$dims&rel=1e-3&lead=time&periodic=1&tune=1" \
    -o /dev/null
grep -i '^x-cliz-cache: hit' "$work/h2"

echo "== decompress"
curl -sf --data-binary @"$work/SSH.clz" -D "$work/h3" \
    "$base/v1/decompress" -o "$work/recon.f32"
grep -i "^x-cliz-dims: $dims" "$work/h3"
in_bytes=$(wc -c <"$work/SSH.f32")
out_bytes=$(wc -c <"$work/recon.f32")
[ "$in_bytes" = "$out_bytes" ] || { echo "size mismatch $in_bytes != $out_bytes"; exit 1; }

echo "== verify"
curl -sf --data-binary @"$work/SSH.clz" "$base/v1/verify" | tee "$work/verify.json" | head -3
grep -q '"ok": true' "$work/verify.json"

echo "== tune endpoint (cached family)"
curl -sf --data-binary @"$work/SSH.f32" \
    "$base/v1/tune?dims=$dims&rel=1e-3&lead=time&periodic=1" | tee "$work/tune.json"
grep -q '"cache": "hit"' "$work/tune.json"

echo "== tune with estimate=1 (cold family, fast estimator expected)"
curl -sf --data-binary @"$work/SSH.f32" -D "$work/h4" \
    "$base/v1/tune?dims=$dims&rel=1e-2&lead=time&periodic=1&estimate=1" | tee "$work/est.json"
grep -i '^x-cliz-tune-mode: estimate' "$work/h4"
grep -q '"mode": "estimate"' "$work/est.json"
grep -q '"pipelinesTested": 0' "$work/est.json"

echo "== plan"
curl -sf --data-binary @"$work/SSH.f32" \
    "$base/v1/plan?dims=$dims&cores=128&bounds=1e-4,1e-2" | tee "$work/plan.json" | head -5
grep -q '"best"' "$work/plan.json"

echo "== malformed request must 400, not 500"
code=$(curl -s -o /dev/null -w '%{http_code}' --data-binary 'xx' \
    "$base/v1/compress?dims=oops&rel=1e-3")
[ "$code" = "400" ] || { echo "want 400, got $code"; exit 1; }

echo "== metrics"
curl -sf "$base/metrics" >"$work/metrics.txt"
grep '^cliz_requests_total{endpoint="compress",code="200"} 2' "$work/metrics.txt"
# Two families were tuned cold: the searched rel=1e-3 one and the
# estimated rel=1e-2 one.
grep '^cliz_tune_cache_misses_total 2' "$work/metrics.txt"
hits=$(sed -n 's/^cliz_tune_cache_hits_total \([0-9]*\)$/\1/p' "$work/metrics.txt")
[ "$hits" -ge 2 ] || { echo "want >=2 cache hits, got $hits"; exit 1; }
grep -q 'cliz_stage_seconds_total{endpoint="compress"' "$work/metrics.txt"
grep -q 'cliz_request_seconds_bucket{endpoint="decompress"' "$work/metrics.txt"
grep '^cliz_tune_estimate_total{mode="estimate"} 1' "$work/metrics.txt"
grep -q '^cliz_tune_estimate_total{mode="search"}' "$work/metrics.txt"

echo "== graceful shutdown"
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "clizd smoke: OK"
