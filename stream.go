package cliz

import (
	"errors"
	"fmt"
	"io"

	"cliz/internal/core"
	"cliz/internal/stream"
)

// ErrCorrupt is the sentinel error wrapped by every decode-side rejection
// of malformed or damaged input — blob and stream alike. Use errors.Is to
// distinguish corruption from usage errors.
var ErrCorrupt = core.ErrCorrupt

// StreamFrameKind says how one frame of a stream was coded.
type StreamFrameKind int

const (
	// StreamKeyframe is an independently coded frame at the keyframe cadence.
	StreamKeyframe StreamFrameKind = iota
	// StreamDelta is a frame quantized against the reconstruction of its
	// predecessor.
	StreamDelta
	// StreamIntra is a frame coded independently because the temporal
	// residual lost to intra-frame prediction; like a keyframe, it is a sync
	// point that needs no replay.
	StreamIntra
)

// String names the kind ("key", "delta", "intra").
func (k StreamFrameKind) String() string { return stream.Kind(k).String() }

// StreamSpec describes the frames of a stream: every Append carries one
// timestep with these extents and mask.
type StreamSpec struct {
	// Name labels the stream's frames (trace and error messages only).
	Name string
	// Dims are the per-frame extents (rank 1..4); a frame is one timestep,
	// so Dims has no time axis of its own.
	Dims []int
	// MaskRegions is the optional horizontal mask map over the trailing two
	// dims (length lat·lon), exactly as in Dataset.
	MaskRegions []int32
	// FillValue is the sentinel stored at masked points.
	FillValue float32
}

// StreamFrameInfo reports what one StreamWriter.Append wrote.
type StreamFrameInfo struct {
	// Index is the frame's position in the stream.
	Index int
	// Kind says how the frame was coded.
	Kind StreamFrameKind
	// PayloadBytes is the compressed payload size.
	PayloadBytes int
	// RecordBytes is the full record size (header + payload).
	RecordBytes int
	// Offset is the record's byte offset in the stream.
	Offset int
}

// StreamWriter appends error-bounded timesteps to an io.Writer. Each frame
// is predicted from the decoder-visible reconstruction of the previous one
// (falling back to intra-frame coding when the temporal residual loses), so
// the error bound holds on every frame with no drift, exactly as for
// independent blobs. Every WithKeyframeInterval-th frame is a keyframe, so
// a reader can seek anywhere by replaying at most one interval.
//
// The writer is not safe for concurrent use. Any encode or write error is
// sticky: the stream bytes before the failed frame remain a valid stream.
type StreamWriter struct {
	w    *stream.Writer
	dst  io.Writer
	cfg  stream.Config
	eb   ErrorBound
	spec StreamSpec
	err  error
}

// NewStreamWriter starts a stream on dst. The error bound may be relative:
// a Rel bound is resolved against the value range of the first appended
// frame (the stream header is written on the first Append). pipe configures
// keyframe/intra coding exactly as for Compress (nil selects the default).
// Accepted options: WithKeyframeInterval, WithContext, WithWorkers,
// WithEntropy, WithTrace, WithMaterializedPermute.
func NewStreamWriter(dst io.Writer, spec StreamSpec, eb ErrorBound, pipe *Pipeline, opts ...Option) (*StreamWriter, error) {
	if dst == nil {
		return nil, errors.New("cliz: nil stream destination")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	// Validate the spec eagerly by round-tripping it through Dataset with a
	// placeholder frame; the real header write happens on the first Append.
	ds := spec.dataset(nil)
	vol := 1
	for _, d := range spec.Dims {
		if d < 1 {
			return nil, fmt.Errorf("cliz: non-positive frame extent in %v", spec.Dims)
		}
		vol *= d
	}
	ds.Data = make([]float32, vol)
	ids, err := ds.internal()
	if err != nil {
		return nil, err
	}
	sc := stream.Config{
		Name:     spec.Name,
		Dims:     spec.Dims,
		Mask:     ids.Mask,
		Fill:     spec.FillValue,
		Interval: cfg.keyframe,
		Opts: core.Options{
			Trace:               cfg.trace.collector(),
			Workers:             cfg.workers,
			Entropy:             cfg.entropy,
			MaterializedPermute: cfg.materialized,
			Interrupt:           cfg.interrupt(),
		},
	}
	if pipe != nil {
		if pipe.p.Perm == nil {
			return nil, errors.New(
				"cliz: zero-value Pipeline; use AutoTune or DefaultPipeline, or pass nil for the default")
		}
		p := pipe.p
		sc.Pipe = &p
	}
	return &StreamWriter{dst: dst, cfg: sc, eb: eb, spec: spec}, nil
}

// dataset wraps one frame of the stream as a Dataset.
func (s StreamSpec) dataset(frame []float32) *Dataset {
	return &Dataset{
		Name:        s.Name,
		Data:        frame,
		Dims:        s.Dims,
		MaskRegions: s.MaskRegions,
		FillValue:   s.FillValue,
	}
}

// start resolves the error bound against the first frame and writes the
// stream header.
func (w *StreamWriter) start(frame []float32) error {
	ids, err := w.spec.dataset(frame).internal()
	if err != nil {
		return err
	}
	abs, err := w.eb.resolve(ids)
	if err != nil {
		return err
	}
	w.cfg.EB = abs
	sw, err := stream.NewWriter(w.dst, w.cfg)
	if err != nil {
		return err
	}
	w.w = sw
	return nil
}

// Append compresses one timestep and writes its frame record. The frame
// slice is not retained.
func (w *StreamWriter) Append(frame []float32) (StreamFrameInfo, error) {
	if w.err != nil {
		return StreamFrameInfo{}, w.err
	}
	if w.w == nil {
		if err := w.start(frame); err != nil {
			w.err = err
			return StreamFrameInfo{}, err
		}
	}
	info, err := w.w.Append(frame)
	if err != nil {
		return StreamFrameInfo{}, err
	}
	return StreamFrameInfo{
		Index:        info.Index,
		Kind:         StreamFrameKind(info.Kind),
		PayloadBytes: info.PayloadBytes,
		RecordBytes:  info.RecordBytes,
		Offset:       info.Offset,
	}, nil
}

// Frames returns the number of frames appended so far.
func (w *StreamWriter) Frames() int {
	if w.w == nil {
		return 0
	}
	return w.w.Frames()
}

// Close marks the stream complete and blocks further appends. A stream
// closed before any Append requires an absolute bound (a relative bound has
// no frame to resolve against); the header of such an empty stream is
// written by Close itself.
func (w *StreamWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.w == nil {
		if w.eb.Abs <= 0 || w.eb.Rel != 0 {
			w.err = errors.New("cliz: closing an empty stream with a relative bound; append a frame or use Abs")
			return w.err
		}
		w.cfg.EB = w.eb.Abs
		sw, err := stream.NewWriter(w.dst, w.cfg)
		if err != nil {
			w.err = err
			return err
		}
		w.w = sw
	}
	return w.w.Close()
}

// StreamReader decodes a stream produced by StreamWriter. It is positional:
// ReadFrame decodes the frame at the current position and advances, Seek
// repositions. Seeking replays from the nearest preceding sync frame — at
// most one keyframe interval of work — and yields frames bit-identical to
// sequential decode. The reader is not safe for concurrent use.
type StreamReader struct {
	r *stream.Reader
}

// NewStreamReader opens a stream held in memory. The header and every frame
// record are validated structurally up front (hostile input fails with an
// error wrapping ErrCorrupt and never panics); payload checksums are
// verified when a frame is decoded. Accepted options: WithContext,
// WithWorkers, WithTrace, WithBoundCheck, WithMaterializedPermute.
func NewStreamReader(blob []byte, opts ...Option) (*StreamReader, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	r, err := stream.Parse(blob, core.DecompressOptions{
		Workers:             cfg.workers,
		Trace:               cfg.trace.collector(),
		BoundCheckEvery:     cfg.boundEvery,
		MaterializedPermute: cfg.materialized,
		Interrupt:           cfg.interrupt(),
	})
	if err != nil {
		return nil, err
	}
	return &StreamReader{r: r}, nil
}

// Frames returns the number of frames in the stream.
func (r *StreamReader) Frames() int { return r.r.Frames() }

// Dims returns the per-frame extents.
func (r *StreamReader) Dims() []int { return r.r.Dims() }

// ErrorBound returns the stream's absolute error bound (a relative bound is
// resolved at write time and stored absolute).
func (r *StreamReader) ErrorBound() float64 { return r.r.EB() }

// KeyframeInterval returns the stream's declared keyframe interval.
func (r *StreamReader) KeyframeInterval() int { return r.r.Interval() }

// Pos returns the index of the frame the next ReadFrame will decode.
func (r *StreamReader) Pos() int { return r.r.Pos() }

// FrameKind returns how frame t was coded.
func (r *StreamReader) FrameKind(t int) (StreamFrameKind, error) {
	rec, err := r.r.Record(t)
	if err != nil {
		return 0, err
	}
	return StreamFrameKind(rec.Kind), nil
}

// Seek positions the reader so the next ReadFrame returns frame t.
func (r *StreamReader) Seek(t int) error { return r.r.Seek(t) }

// ReadFrame decodes the frame at the current position, advances past it and
// returns a fresh copy of the reconstruction. At end of stream it returns
// io.EOF. Damage inside a frame's payload is reported as an error naming
// the frame and wrapping ErrCorrupt — never a panic.
func (r *StreamReader) ReadFrame() ([]float32, error) { return r.r.ReadFrame() }

// compile-time checks that the public frame kinds line up with the internal
// ones (StreamFrameKind values convert directly to stream.Kind).
var (
	_ = [1]struct{}{}[int(StreamKeyframe)-int(stream.KindKey)]
	_ = [1]struct{}{}[int(StreamDelta)-int(stream.KindDelta)]
	_ = [1]struct{}{}[int(StreamIntra)-int(stream.KindIntra)]
)
