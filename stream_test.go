package cliz_test

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"cliz"
	"cliz/internal/datagen"
)

// temporalFixture generates one deterministic frame sequence through the
// datagen temporal scenario machinery.
func temporalFixture(t *testing.T, spec datagen.TemporalSpec) *datagen.TemporalStream {
	t.Helper()
	ts, err := datagen.Temporal(spec)
	if err != nil {
		t.Fatalf("datagen.Temporal: %v", err)
	}
	return ts
}

func streamSpec(ts *datagen.TemporalStream) cliz.StreamSpec {
	spec := cliz.StreamSpec{Name: ts.Name, Dims: ts.Dims, FillValue: ts.Fill}
	if ts.Mask != nil {
		spec.MaskRegions = ts.Mask.Regions
	}
	return spec
}

// encodeStream writes every frame and returns the stream bytes.
func encodeStream(t *testing.T, ts *datagen.TemporalStream, eb cliz.ErrorBound, opts ...cliz.Option) ([]byte, []cliz.StreamFrameInfo) {
	t.Helper()
	var buf bytes.Buffer
	w, err := cliz.NewStreamWriter(&buf, streamSpec(ts), eb, nil, opts...)
	if err != nil {
		t.Fatalf("NewStreamWriter: %v", err)
	}
	var infos []cliz.StreamFrameInfo
	for i, f := range ts.Frames {
		info, err := w.Append(f)
		if err != nil {
			t.Fatalf("Append frame %d: %v", i, err)
		}
		infos = append(infos, info)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes(), infos
}

func decodeStream(t *testing.T, blob []byte, opts ...cliz.Option) [][]float32 {
	t.Helper()
	r, err := cliz.NewStreamReader(blob, opts...)
	if err != nil {
		t.Fatalf("NewStreamReader: %v", err)
	}
	var out [][]float32
	for {
		f, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", len(out), err)
		}
		out = append(out, f)
	}
	return out
}

// checkFrameBound asserts |recon − orig| ≤ eb at every valid finite point
// and exact fill at masked points; it returns the frame's max error.
func checkFrameBound(t *testing.T, frame int, orig, recon []float32, ts *datagen.TemporalStream, eb float64) float64 {
	t.Helper()
	worst := 0.0
	for p := range orig {
		if ts.Mask != nil && ts.Mask.Regions[p] == 0 {
			if recon[p] != ts.Fill {
				t.Fatalf("frame %d point %d: masked point holds %g, want fill", frame, p, recon[p])
			}
			continue
		}
		o := float64(orig[p])
		if math.IsNaN(o) || math.IsInf(o, 0) {
			continue
		}
		d := math.Abs(o - float64(recon[p]))
		if d > worst {
			worst = d
		}
		if d > eb*(1+1e-9) {
			t.Fatalf("frame %d point %d: |%g − %g| = %g > eb %g", frame, p, recon[p], orig[p], d, eb)
		}
	}
	return worst
}

// TestStreamNoDriftHundredFrames is the no-drift contract: on a 100-frame
// stream, the per-frame max error obeys the bound at frame 100 exactly as at
// frame 1 — temporal prediction runs against the reconstruction, so error
// cannot accumulate across frames. Checked for absolute and relative bounds,
// masked and unmasked.
func TestStreamNoDriftHundredFrames(t *testing.T) {
	cases := []struct {
		name   string
		masked bool
		eb     cliz.ErrorBound
	}{
		{"abs-unmasked", false, cliz.Abs(0.05)},
		{"abs-masked", true, cliz.Abs(0.05)},
		{"rel-unmasked", false, cliz.Rel(1e-3)},
		{"rel-masked", true, cliz.Rel(1e-3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := datagen.TemporalSpec{
				Name: "drift-" + tc.name, Frames: 100, NLat: 28, NLon: 36,
				Seed: 42, Corr: 0.97, AdvectCells: 0.4, Drift: 0.02, NoiseAmp: 0.6,
			}
			if tc.masked {
				spec.MaskFrac = 0.35
			}
			ts := temporalFixture(t, spec)
			blob, _ := encodeStream(t, ts, tc.eb, cliz.WithKeyframeInterval(16))
			r, err := cliz.NewStreamReader(blob)
			if err != nil {
				t.Fatalf("NewStreamReader: %v", err)
			}
			abs := r.ErrorBound()
			if abs <= 0 {
				t.Fatalf("stream stores non-positive bound %g", abs)
			}
			got := decodeStream(t, blob)
			if len(got) != 100 {
				t.Fatalf("decoded %d frames, want 100", len(got))
			}
			for f := range got {
				checkFrameBound(t, f, ts.Frames[f], got[f], ts, abs)
			}
		})
	}
}

// TestStreamRandomAccessBitIdentical: Seek(t)+ReadFrame must be bit-identical
// to sequential decode of frame t, for random targets, across keyframe
// intervals {1, 4, 16}.
func TestStreamRandomAccessBitIdentical(t *testing.T) {
	ts := temporalFixture(t, datagen.TemporalSpec{
		Name: "seek", Frames: 40, NLat: 24, NLon: 24, Seed: 9,
		Corr: 0.95, AdvectCells: 0.5, NoiseAmp: 0.5, MaskFrac: 0.3,
	})
	for _, interval := range []int{1, 4, 16} {
		blob, _ := encodeStream(t, ts, cliz.Abs(0.01), cliz.WithKeyframeInterval(interval))
		seq := decodeStream(t, blob)
		r, err := cliz.NewStreamReader(blob)
		if err != nil {
			t.Fatalf("interval %d: NewStreamReader: %v", interval, err)
		}
		if r.KeyframeInterval() != interval {
			t.Fatalf("stream declares interval %d, want %d", r.KeyframeInterval(), interval)
		}
		rng := rand.New(rand.NewSource(int64(100 + interval)))
		for k := 0; k < 30; k++ {
			target := rng.Intn(len(ts.Frames))
			if err := r.Seek(target); err != nil {
				t.Fatalf("interval %d: Seek(%d): %v", interval, target, err)
			}
			got, err := r.ReadFrame()
			if err != nil {
				t.Fatalf("interval %d: ReadFrame at %d: %v", interval, target, err)
			}
			for p := range got {
				if math.Float32bits(got[p]) != math.Float32bits(seq[target][p]) {
					t.Fatalf("interval %d frame %d point %d: seek %g != sequential %g",
						interval, target, p, got[p], seq[target][p])
				}
			}
		}
	}
}

// TestStreamDeltaBeatsIndependent asserts the tentpole win: on the temporal
// scenario, delta-coded frames are at least 1.3× smaller than the same
// frames compressed as independent blobs at the same bound.
func TestStreamDeltaBeatsIndependent(t *testing.T) {
	spec := datagen.TemporalScenario(0.12)[0]
	spec.Frames = 32
	ts := temporalFixture(t, spec)
	const eb = 0.05
	blob, infos := encodeStream(t, ts, cliz.Abs(eb), cliz.WithKeyframeInterval(16))

	var deltaBytes, indepBytes, deltas int
	for i, info := range infos {
		if info.Kind != cliz.StreamDelta {
			continue
		}
		frame := &cliz.Dataset{Name: ts.Name, Data: ts.Frames[i], Dims: ts.Dims, FillValue: ts.Fill}
		if ts.Mask != nil {
			frame.MaskRegions = ts.Mask.Regions
		}
		indep, _, err := cliz.Compress(frame, cliz.Abs(eb), nil)
		if err != nil {
			t.Fatalf("independent compress of frame %d: %v", i, err)
		}
		deltaBytes += info.PayloadBytes
		indepBytes += len(indep)
		deltas++
	}
	if deltas < len(infos)/2 {
		t.Fatalf("only %d/%d frames delta-coded on the advection scenario", deltas, len(infos))
	}
	ratio := float64(indepBytes) / float64(deltaBytes)
	t.Logf("delta-vs-independent ratio: %.2f (%d delta frames, %d vs %d bytes)",
		ratio, deltas, indepBytes, deltaBytes)
	if ratio < 1.3 {
		t.Fatalf("delta frames only %.2f× smaller than independent blobs, want >= 1.3×", ratio)
	}
	// And the stream still decodes within bound, of course.
	got := decodeStream(t, blob)
	for f := range got {
		checkFrameBound(t, f, ts.Frames[f], got[f], ts, eb)
	}
}

// TestStreamIntraFallbackRegression pins the fallback promoted from
// development: a near-constant frame far from its predecessor makes every
// temporal residual underflow the quantizer range (all literals); the writer
// must fall back to intra-frame coding rather than emit a bloated delta
// frame — and the bound must hold either way.
func TestStreamIntraFallbackRegression(t *testing.T) {
	const nLat, nLon, eb = 24, 24, 1e-3
	plane := nLat * nLon
	f0 := make([]float32, plane)
	f1 := make([]float32, plane)
	for i := range f0 {
		ripple := 0.3 * math.Sin(float64(i)/7)
		f0[i] = float32(1500 + ripple)
		f1[i] = float32(-1500 + 0.2*math.Cos(float64(i)/5) + ripple)
	}
	var buf bytes.Buffer
	w, err := cliz.NewStreamWriter(&buf, cliz.StreamSpec{Name: "jump", Dims: []int{nLat, nLon}},
		cliz.Abs(eb), nil, cliz.WithKeyframeInterval(16))
	if err != nil {
		t.Fatalf("NewStreamWriter: %v", err)
	}
	if _, err := w.Append(f0); err != nil {
		t.Fatalf("Append f0: %v", err)
	}
	info, err := w.Append(f1)
	if err != nil {
		t.Fatalf("Append f1: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if info.Kind != cliz.StreamIntra {
		t.Fatalf("jump frame coded as %v, want intra fallback", info.Kind)
	}
	r, err := cliz.NewStreamReader(buf.Bytes())
	if err != nil {
		t.Fatalf("NewStreamReader: %v", err)
	}
	if kind, err := r.FrameKind(1); err != nil || kind != cliz.StreamIntra {
		t.Fatalf("FrameKind(1) = %v, %v", kind, err)
	}
	got := decodeStream(t, buf.Bytes())
	for p := range f1 {
		if d := math.Abs(float64(f1[p]) - float64(got[1][p])); d > eb*(1+1e-9) {
			t.Fatalf("fallback frame point %d: error %g > bound %g", p, d, eb)
		}
	}
}

// TestStreamPublicSurface covers the remaining public-API contracts: option
// plumbing, corrupt input, empty streams, relative-bound resolution.
func TestStreamPublicSurface(t *testing.T) {
	ts := temporalFixture(t, datagen.TemporalSpec{
		Name: "surface", Frames: 8, NLat: 16, NLon: 16, Seed: 5,
		Corr: 0.9, AdvectCells: 0.3, NoiseAmp: 0.4,
	})

	t.Run("workers-and-trace", func(t *testing.T) {
		var wtr cliz.Trace
		blob, _ := encodeStream(t, ts, cliz.Abs(0.01),
			cliz.WithWorkers(3), cliz.WithTrace(&wtr))
		if len(wtr.Stages()) == 0 {
			t.Error("traced stream writer recorded no stages")
		}
		one := decodeStream(t, blob, cliz.WithWorkers(1))
		many := decodeStream(t, blob, cliz.WithWorkers(4))
		for f := range one {
			for p := range one[f] {
				if math.Float32bits(one[f][p]) != math.Float32bits(many[f][p]) {
					t.Fatalf("frame %d differs across decode worker counts", f)
				}
			}
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		blob, _ := encodeStream(t, ts, cliz.Abs(0.01))
		if _, err := cliz.NewStreamReader(blob[:len(blob)-1]); !errors.Is(err, cliz.ErrCorrupt) {
			t.Errorf("truncated stream error %v does not wrap cliz.ErrCorrupt", err)
		}
		if _, err := cliz.NewStreamReader([]byte("not a stream")); !errors.Is(err, cliz.ErrCorrupt) {
			t.Errorf("garbage error %v does not wrap cliz.ErrCorrupt", err)
		}
	})

	t.Run("empty-stream", func(t *testing.T) {
		var buf bytes.Buffer
		w, err := cliz.NewStreamWriter(&buf, cliz.StreamSpec{Dims: []int{4, 4}}, cliz.Abs(0.1), nil)
		if err != nil {
			t.Fatalf("NewStreamWriter: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close of empty stream: %v", err)
		}
		r, err := cliz.NewStreamReader(buf.Bytes())
		if err != nil {
			t.Fatalf("NewStreamReader: %v", err)
		}
		if r.Frames() != 0 {
			t.Fatalf("empty stream has %d frames", r.Frames())
		}
		// A relative bound cannot resolve without a frame.
		var buf2 bytes.Buffer
		w2, _ := cliz.NewStreamWriter(&buf2, cliz.StreamSpec{Dims: []int{4, 4}}, cliz.Rel(0.01), nil)
		if err := w2.Close(); err == nil {
			t.Fatal("closing an empty Rel-bound stream succeeded")
		}
	})

	t.Run("rel-bound-zero-range", func(t *testing.T) {
		var buf bytes.Buffer
		w, err := cliz.NewStreamWriter(&buf, cliz.StreamSpec{Dims: []int{4, 4}}, cliz.Rel(0.01), nil)
		if err != nil {
			t.Fatalf("NewStreamWriter: %v", err)
		}
		if _, err := w.Append(make([]float32, 16)); err == nil {
			t.Fatal("Rel bound resolved against a constant first frame")
		}
	})

	t.Run("zero-pipeline-rejected", func(t *testing.T) {
		var buf bytes.Buffer
		var zero cliz.Pipeline
		if _, err := cliz.NewStreamWriter(&buf, cliz.StreamSpec{Dims: []int{4, 4}},
			cliz.Abs(0.1), &zero); err == nil {
			t.Fatal("zero-value Pipeline accepted")
		}
	})
}
